// Shard-scaling benchmark: the sharded conservative-lookahead engine on a
// fig10-style ADAPT broadcast, swept over --shards in {1, 2, 4, 8}.
//
// Two numbers per shard count:
//   sim_ms   — simulated collective time. Virtual time is part of the
//              determinism contract, so it must be IDENTICAL for every shard
//              count (this binary exits non-zero if it is not) and identical
//              across hosts (scripts/check_perf.py --shard-scaling pins it
//              against BENCH_shard.json).
//   wall_ms  — host wall clock for the measured iterations: the simulator-
//              performance number. Speedup = wall_ms(1) / wall_ms(S); the
//              perf gate enforces a floor only when the recorded hw_threads
//              show the runner can actually parallelise.
//
// A finish-time hash (FNV-1a over total_time and every rank's completion
// time) is reported alongside — a compact cross-host fingerprint of the
// schedule that the gate also pins.
//
//   shard_scaling [--ranks N] [--msg BYTES] [--seg BYTES] [--iters N]
//                 [--json [FILE]]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/bench/report.hpp"
#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/runtime/sharded_engine.hpp"
#include "src/support/parallel.hpp"
#include "src/support/table.hpp"

namespace {

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", ms);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  bench::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 4096));
  const Bytes msg = cli.get_int("msg", mib(1));
  const Bytes seg = cli.get_int("seg", kib(64));
  const int iters = static_cast<int>(cli.get_int("iters", 3));
  const std::vector<int> shard_counts = {1, 2, 4, 8};
  const int hw_threads = support::hardware_jobs();

  std::cout << "== Shard scaling: " << ranks << "-rank ADAPT bcast, MSG="
            << format_bytes(msg) << ", SEG=" << format_bytes(seg)
            << ", hw_threads=" << hw_threads << " ==\n\n";

  const int nodes = (ranks + 31) / 32;
  const auto setup = bench::make_cluster("cori", nodes, ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);
  const coll::Tree tree = coll::build_topo_tree(setup.machine, world, 0);
  const coll::CollOpts opts{.segment_size = seg};

  Table table({"shards", "sim_ms", "wall_ms", "speedup"});
  bench::JsonReport report("shard_scaling");
  report.set_meta("ranks", static_cast<std::int64_t>(ranks));
  report.set_meta("msg_bytes", static_cast<std::int64_t>(msg));
  report.set_meta("seg_bytes", static_cast<std::int64_t>(seg));
  report.set_meta("iters", static_cast<std::int64_t>(iters));
  report.set_meta("hw_threads", static_cast<std::int64_t>(hw_threads));

  double base_sim_ms = 0;
  double base_wall_ms = 0;
  std::string base_hash;
  for (const int shards : shard_counts) {
    runtime::ShardedEngineOptions options;
    options.shards = shards;
    runtime::ShardedEngine engine(setup.machine, options);

    auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
      (void)ctx;
      co_await coll::bcast(ctx, world, mpi::MutView{nullptr, msg}, 0, tree,
                           coll::Style::kAdapt, opts);
    };
    // Schedule fingerprint first, on the fresh engine: absolute finish times
    // are offsets from virtual time zero, so the hash depends only on the
    // schedule — not on how many benchmark iterations ran before it.
    const runtime::RunResult result =
        engine.run([&](runtime::Context& ctx) -> sim::Task<> {
          co_await coll::bcast(ctx, world, mpi::MutView{nullptr, msg}, 0,
                               tree, coll::Style::kAdapt, opts);
        });
    std::uint64_t h = 1469598103934665603ull;
    h = fnv1a64(&result.total_time, sizeof result.total_time, h);
    h = fnv1a64(result.rank_finish.data(),
                result.rank_finish.size() * sizeof(TimeNs), h);
    const std::string hash = hex64(h);

    const auto start = std::chrono::steady_clock::now();
    const double sim_ms =
        bench::measure(engine, world, fn, {.warmup = 1, .iterations = iters})
            .avg_ms();
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();

    if (shards == 1) {
      base_sim_ms = sim_ms;
      base_wall_ms = wall_ms;
      base_hash = hash;
      report.set_meta("sim_ms", format_ms(sim_ms));
      report.set_meta("finish_hash", hash);
    } else if (sim_ms != base_sim_ms || hash != base_hash) {
      std::cerr << "DETERMINISM VIOLATION at shards=" << shards
                << ": sim_ms=" << format_ms(sim_ms) << " vs "
                << format_ms(base_sim_ms) << ", finish_hash=" << hash
                << " vs " << base_hash << "\n";
      return 1;
    }
    report.set_meta("wall_ms_" + std::to_string(shards), format_ms(wall_ms));
    table.add_row_numeric(std::to_string(shards),
                          {sim_ms, wall_ms, base_wall_ms / wall_ms});
  }
  table.print(std::cout);
  std::cout << "\n(simulated time and finish hash identical across all shard "
               "counts: determinism contract holds)\n";
  report.add_table("sharded engine scaling", table);
  return bench::emit_json(cli, report) ? 0 : 1;
}
