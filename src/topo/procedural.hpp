// Procedural topologies: O(1) route-cost lookup with no per-pair tables.
//
// A million-rank simulation cannot afford an N×N route matrix (10^12 entries)
// or even per-rank adjacency lists. These generators describe dragonfly and
// fat-tree fabrics by their construction parameters alone — a rank's position
// (group/router, pod/edge) is arithmetic on its index, and the Hockney cost
// of any (src, dst) pair is computed from the class of the path between those
// positions. Total state is a handful of integers regardless of rank count.
//
// The same interface doubles as the sharded engine's locality oracle: ranks
// are grouped into "blocks" (dragonfly group, fat-tree pod, machine node)
// such that traffic inside a block is cheap and every cross-block route pays
// at least min_cross_block_alpha() of wire latency. The shard mapper assigns
// whole blocks to shards, and the conservative window lookahead is exactly
// that minimum cross-block alpha: an event executing at time t can only make
// another shard's rank runnable at t + L or later.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/topo/hardware.hpp"
#include "src/support/units.hpp"

namespace adapt::topo {

/// Hockney cost of the full route between two ranks: alpha is the sum of the
/// per-hop latencies, beta the bottleneck (maximum) inverse bandwidth.
struct RouteCost {
  TimeNs alpha = 0;
  double beta_ns_per_byte = 0.0;

  TimeNs time(Bytes bytes) const {
    return alpha + static_cast<TimeNs>(beta_ns_per_byte *
                                       static_cast<double>(bytes));
  }
};

/// A topology defined by formula rather than tables. All queries are O(1).
class ProcTopology {
 public:
  virtual ~ProcTopology() = default;

  virtual int nranks() const = 0;
  /// Route cost between two ranks (src == dst yields {0, 0}).
  virtual RouteCost route(Rank src, Rank dst) const = 0;
  /// Locality block of a rank (dragonfly group / fat-tree pod / node).
  virtual int block_of(Rank r) const = 0;
  virtual int blocks() const = 0;
  /// Smallest route alpha between ranks in different blocks — the sharded
  /// engine's conservative lookahead bound.
  virtual TimeNs min_cross_block_alpha() const = 0;
  virtual std::string name() const = 0;
};

/// Dragonfly with `groups` all-to-all connected groups of `routers_per_group`
/// routers, `ranks_per_router` ranks injecting into each router. Minimal
/// routing: inject → (local hop) → (global hop → local hop) → eject.
class Dragonfly final : public ProcTopology {
 public:
  Dragonfly(int groups, int routers_per_group, int ranks_per_router,
            LinkParams inject, LinkParams local, LinkParams global);

  int nranks() const override { return nranks_; }
  RouteCost route(Rank src, Rank dst) const override;
  int block_of(Rank r) const override { return group_of(r); }
  int blocks() const override { return groups_; }
  TimeNs min_cross_block_alpha() const override;
  std::string name() const override;

  int router_of(Rank r) const { return r / ranks_per_router_; }
  int group_of(Rank r) const { return router_of(r) / routers_per_group_; }

 private:
  int groups_;
  int routers_per_group_;
  int ranks_per_router_;
  int nranks_;
  LinkParams inject_;
  LinkParams local_;
  LinkParams global_;
};

/// k-ary fat tree: k pods of k/2 edge and k/2 aggregation switches, k/2
/// hosts per edge switch — k^3/4 ranks total. Routes climb host→edge→agg→
/// core as far as needed and descend symmetrically.
class FatTree final : public ProcTopology {
 public:
  FatTree(int k, LinkParams host_edge, LinkParams edge_agg,
          LinkParams agg_core);

  int nranks() const override { return nranks_; }
  RouteCost route(Rank src, Rank dst) const override;
  int block_of(Rank r) const override { return pod_of(r); }
  int blocks() const override { return k_; }
  TimeNs min_cross_block_alpha() const override;
  std::string name() const override;

  int edge_of(Rank r) const { return r / (k_ / 2); }
  int pod_of(Rank r) const { return edge_of(r) / (k_ / 2); }

 private:
  int k_;
  int nranks_;
  LinkParams host_edge_;
  LinkParams edge_agg_;
  LinkParams agg_core_;
};

/// Adapter presenting a Machine as a ProcTopology: blocks are nodes, routes
/// are the machine's level lanes. Lets the shard mapper treat preset
/// machines and procedural fabrics uniformly.
class MachineTopology final : public ProcTopology {
 public:
  explicit MachineTopology(const Machine& machine);

  int nranks() const override { return machine_->nranks(); }
  RouteCost route(Rank src, Rank dst) const override;
  int block_of(Rank r) const override { return machine_->node_of(r); }
  int blocks() const override { return blocks_; }
  TimeNs min_cross_block_alpha() const override {
    return machine_->spec().inter_node.alpha;
  }
  std::string name() const override;

 private:
  const Machine* machine_;
  int blocks_;
};

namespace presets {

/// Dragonfly with Aries-flavoured link parameters; picks the smallest
/// balanced (g = a + 1 groups, p = a ranks/router) instance holding at least
/// `min_ranks` ranks.
std::unique_ptr<Dragonfly> dragonfly(int min_ranks);
/// k-ary fat tree with InfiniBand-flavoured parameters; smallest even k with
/// k^3/4 >= min_ranks.
std::unique_ptr<FatTree> fat_tree(int min_ranks);

}  // namespace presets

/// Assignment of ranks to shards along block boundaries: blocks are dealt to
/// shards in index order, closing a shard once it holds its fair share of the
/// remaining ranks. Shard count is clamped to the block count, so no route
/// interior to a block ever crosses shards and min_cross_block_alpha() is a
/// valid lookahead for every cross-shard message.
struct ShardMap {
  int shards = 1;
  std::vector<int> shard_of;              ///< rank -> shard
  std::vector<std::vector<Rank>> ranks;   ///< shard -> member ranks, ascending
};

ShardMap make_shard_map(const ProcTopology& topo, int shards);

}  // namespace adapt::topo
