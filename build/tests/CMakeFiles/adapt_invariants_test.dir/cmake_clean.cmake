file(REMOVE_RECURSE
  "CMakeFiles/adapt_invariants_test.dir/adapt_invariants_test.cpp.o"
  "CMakeFiles/adapt_invariants_test.dir/adapt_invariants_test.cpp.o.d"
  "adapt_invariants_test"
  "adapt_invariants_test.pdb"
  "adapt_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
