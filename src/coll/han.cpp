#include "src/coll/han.hpp"

#include <algorithm>

#include "src/support/error.hpp"

namespace adapt::coll {

namespace {

/// Leader of a node group: the root when present, otherwise the first member
/// in communicator order (matching hierarchical.hpp's election so the two
/// designs are comparable head to head).
Rank leader_of(const mpi::Comm& node, Rank root_global) {
  return node.contains(root_global) ? root_global : node.members().front();
}

void merge_edges(Tree& final_tree, const Tree& group_tree) {
  for (Rank r = 0; r < group_tree.size(); ++r) {
    for (Rank c : group_tree.kids(r)) {
      ADAPT_CHECK(final_tree.parent[static_cast<std::size_t>(c)] == -1)
          << "rank " << c << " acquired two parents";
      final_tree.parent[static_cast<std::size_t>(c)] = r;
      final_tree.children[static_cast<std::size_t>(r)].push_back(c);
    }
  }
}

}  // namespace

HanGroups han_groups(const mpi::Comm& comm, const topo::Machine& machine,
                     Rank root) {
  ADAPT_CHECK(root >= 0 && root < comm.size());
  const Rank root_global = comm.global(root);
  HanGroups g;
  g.nodes = comm.split_by([&](Rank r) { return machine.node_of(r); });
  std::vector<Rank> leaders;
  leaders.reserve(g.nodes.size());
  for (const mpi::Comm& node : g.nodes)
    leaders.push_back(leader_of(node, root_global));
  g.leaders = mpi::Comm(std::move(leaders));
  return g;
}

Tree build_han_tree(const topo::Machine& machine, const mpi::Comm& comm,
                    Rank root, const HanSpec& spec) {
  const int n = comm.size();
  const HanGroups g = han_groups(comm, machine, root);
  const Rank root_global = comm.global(root);

  Tree result;
  result.root = root;
  result.parent.assign(static_cast<std::size_t>(n), -1);
  result.children.resize(static_cast<std::size_t>(n));

  // Inter-node level first, so every leader's child list starts with its
  // slow-lane (fabric) children and long-haul transfers start earliest.
  if (g.leaders.size() > 1) {
    std::vector<Rank> leaders_local;
    leaders_local.reserve(g.leaders.members().size());
    for (const Rank leader : g.leaders.members())
      leaders_local.push_back(comm.local_of(leader));
    merge_edges(result,
                tree_over(spec.inter_node, leaders_local, root, spec.radix));
  }
  for (const mpi::Comm& node : g.nodes) {
    if (node.size() <= 1) continue;
    std::vector<Rank> members_local;
    members_local.reserve(node.members().size());
    for (const Rank m : node.members())
      members_local.push_back(comm.local_of(m));
    const Rank node_root = comm.local_of(leader_of(node, root_global));
    merge_edges(result, tree_over(spec.intra_node, members_local, node_root,
                                  spec.radix));
  }

  result.validate();
  return result;
}

sim::Task<> han_bcast(runtime::Context& ctx, const mpi::Comm& comm,
                      mpi::MutView buffer, Rank root,
                      const topo::Machine& machine, const HanSpec& spec) {
  const Tree tree = build_han_tree(machine, comm, root, spec);
  co_await bcast(ctx, comm, buffer, root, tree, spec.style, spec.opts);
}

sim::Task<> han_reduce(runtime::Context& ctx, const mpi::Comm& comm,
                       mpi::MutView accum, mpi::ReduceOp op,
                       mpi::Datatype dtype, Rank root,
                       const topo::Machine& machine, const HanSpec& spec) {
  const Tree tree = build_han_tree(machine, comm, root, spec);
  co_await reduce(ctx, comm, accum, op, dtype, root, tree, spec.style,
                  spec.opts);
}

sim::Task<> han_allreduce(runtime::Context& ctx, const mpi::Comm& comm,
                          mpi::MutView accum, mpi::ReduceOp op,
                          mpi::Datatype dtype, const topo::Machine& machine,
                          const HanSpec& spec) {
  co_await han_reduce(ctx, comm, accum, op, dtype, 0, machine, spec);
  co_await han_bcast(ctx, comm, accum, 0, machine, spec);
}

}  // namespace adapt::coll
