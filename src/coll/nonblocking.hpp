// Non-blocking collectives with asynchronous progress — the paper's §7
// future-work item, which the event-driven design makes almost free: the
// ADAPT state machine already advances entirely on completion callbacks in
// the progress context, so an MPI_Ibcast-style call only needs to hand back
// a waitable handle instead of awaiting internally. The application overlaps
// its own compute with the collective and waits when it needs the data.
#pragma once

#include <memory>

#include "src/coll/coll.hpp"

namespace adapt::coll {

/// Handle to an in-flight non-blocking collective.
class CollRequest {
 public:
  bool complete() const { return done_.fired(); }

  /// Suspends until the collective finished on this rank, then hops back to
  /// the application thread (so a noise burst delays the *observation* of
  /// completion, not the collective's own progress). Rethrows any error the
  /// collective hit.
  sim::Task<> wait(runtime::Context& ctx) {
    if (!done_.fired()) co_await done_;
    co_await ctx.compute(0);
    if (failure_ && *failure_) std::rethrow_exception(*failure_);
  }

  /// Internal: fired by the collective's completion callback.
  sim::Trigger& trigger() { return done_; }
  void set_failure(std::shared_ptr<std::exception_ptr> failure) {
    failure_ = std::move(failure);
  }

 private:
  sim::Trigger done_;
  std::shared_ptr<std::exception_ptr> failure_;
};

using CollRequestPtr = std::shared_ptr<CollRequest>;

/// Starts an ADAPT event-driven broadcast and returns immediately; the
/// operation progresses asynchronously. Same contract as coll::bcast
/// otherwise (call on every rank in the same order; buffer must stay alive
/// until the request completes).
CollRequestPtr ibcast(runtime::Context& ctx, const mpi::Comm& comm,
                      mpi::MutView buffer, Rank root, const Tree& tree,
                      const CollOpts& opts = {});

/// Non-blocking ADAPT reduce; accum must stay alive until completion.
CollRequestPtr ireduce(runtime::Context& ctx, const mpi::Comm& comm,
                       mpi::MutView accum, mpi::ReduceOp op,
                       mpi::Datatype dtype, Rank root, const Tree& tree,
                       const CollOpts& opts = {});

}  // namespace adapt::coll
