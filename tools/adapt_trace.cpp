// adapt-trace: query and compare trace exports written by the simulator.
//
//   adapt-trace summarize TRACE
//       per-collective latency percentiles, per-link utilization,
//       critical-path attribution and tuner model-vs-simulated rollups
//   adapt-trace query TRACE [--rank N] [--cat CAT] [--op SUBSTR]
//                            [--from-us N] [--to-us N] [--limit N]
//       filter spans and instants by rank / category / name / time window
//   adapt-trace diff BASE NEW [--top N]
//       align two same-seed (or cross-build) runs, attribute the
//       end-to-end delta to alpha/beta/compute/contention/noise per
//       collective, print the top changed spans
//
// Exit code: 0 on success, 1 on usage errors or unreadable input.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/obs/query.hpp"
#include "src/support/error.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: adapt-trace summarize TRACE\n"
      << "       adapt-trace query TRACE [--rank N] [--cat CAT] "
         "[--op SUBSTR] [--from-us N] [--to-us N] [--limit N]\n"
      << "       adapt-trace diff BASE NEW [--top N]\n";
  return 1;
}

/// Splits argv into positional operands and --key value flags.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  std::string flag(const std::string& key, const std::string& fallback) const {
    for (const auto& [k, v] : flags) {
      if (k == key) return v;
    }
    return fallback;
  }
  std::int64_t flag_int(const std::string& key, std::int64_t fallback) const {
    const std::string v = flag(key, "");
    return v.empty() ? fallback : std::stoll(v);
  }
  bool has(const std::string& key) const {
    for (const auto& [k, v] : flags) {
      if (k == key) return true;
    }
    return false;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string value = "1";
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      args.flags.emplace_back(arg.substr(2), value);
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);

  if (cmd == "summarize") {
    if (args.positional.size() != 1) return usage();
    const adapt::obs::LoadedTrace trace =
        adapt::obs::load_trace_file(args.positional[0]);
    adapt::obs::print_summary(adapt::obs::summarize(trace), std::cout);
    return 0;
  }

  if (cmd == "query") {
    if (args.positional.size() != 1) return usage();
    const adapt::obs::LoadedTrace trace =
        adapt::obs::load_trace_file(args.positional[0]);
    adapt::obs::EventFilter filter;
    filter.rank = static_cast<adapt::Rank>(args.flag_int("rank", -1));
    filter.name = args.flag("op", "");
    const std::string cat = args.flag("cat", "");
    if (!cat.empty()) {
      filter.cat = adapt::obs::cat_from_name(cat);
      if (!filter.cat.has_value()) {
        std::cerr << "unknown category: " << cat << "\n";
        return 1;
      }
    }
    if (args.has("from-us")) filter.from = args.flag_int("from-us", 0) * 1000;
    if (args.has("to-us")) filter.to = args.flag_int("to-us", 0) * 1000;
    const int limit = static_cast<int>(args.flag_int("limit", 100));
    adapt::obs::print_query(adapt::obs::query_events(trace, filter, limit),
                            std::cout);
    return 0;
  }

  if (cmd == "diff") {
    if (args.positional.size() != 2) return usage();
    const adapt::obs::LoadedTrace base =
        adapt::obs::load_trace_file(args.positional[0]);
    const adapt::obs::LoadedTrace run =
        adapt::obs::load_trace_file(args.positional[1]);
    const int top = static_cast<int>(args.flag_int("top", 10));
    adapt::obs::print_diff(adapt::obs::diff_traces(base, run, top),
                           std::cout);
    return 0;
  }

  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const adapt::Error& e) {
    std::cerr << "adapt-trace: " << e.what() << "\n";
    return 1;
  }
}
