// Persistent-collective lifecycle tests (PR 6): the MPI-4 shaped error
// contract (double start, start after comm free, pready misuse), plan-cache
// sharing and fingerprint-guarded invalidation, overlapping starts of
// independent handles, per-start schedule identity, and the steady-state
// allocation-freedom the cached schedule exists to deliver (100 starts,
// zero heap traffic after warm-up, proven by a counting global operator
// new).
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/coll/persistent.hpp"
#include "src/mpi/comm.hpp"
#include "src/mpi/comm_ft.hpp"
#include "src/mpi/errors.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/topo/presets.hpp"
#include "src/tune/tuner.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator (same scheme as hotpath_test): every path into
// the heap bumps one counter; the steady-state test snapshots it around the
// measured rounds and asserts the delta is zero.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace adapt::coll {
namespace {

using mpi::ErrCode;
using runtime::Context;
using runtime::SimEngine;

constexpr int kRanks = 8;

topo::Machine test_machine() { return topo::Machine(topo::cori(2), kRanks); }

/// Deterministic per-(rank, round) byte pattern.
void fill(std::vector<std::byte>& buf, int rank, int round) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((rank * 131 + round * 17 + i * 7) & 0xff);
  }
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Coroutine programs use EXPECT_* only: gtest ASSERT_* expands to a plain
// `return`, which is ill-formed inside a coroutine.

// ------------------------------------------------------------------ lifecycle

TEST(Lifecycle, DoubleStartReturnsPendingAndHandleRestarts) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);
  const mpi::Comm world = mpi::Comm::world(kRanks);
  constexpr Bytes kBytes = 2048;
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    PersistentOpts popts;
    popts.coll.segment_size = 256;
    auto op = bcast_init(ctx, world, mpi::MutView{mine.data(), kBytes},
                         /*root=*/0, popts);
    for (int round = 0; round < 2; ++round) {
      if (ctx.rank() == 0) fill(mine, 0, round);
      EXPECT_EQ(op->start(), ErrCode::kOk);
      EXPECT_TRUE(op->in_flight());
      // A second start before wait() is the MPI-4 "operation still pending"
      // misuse, reported as an error code instead of UB.
      EXPECT_EQ(op->start(), ErrCode::kErrPending);
      co_await op->wait();
      EXPECT_EQ(op->rounds_completed(), round + 1);
      EXPECT_EQ(op->last_error(), ErrCode::kOk);
    }
  };
  ASSERT_NO_THROW(engine.run(program));

  std::vector<std::byte> expected(static_cast<std::size_t>(kBytes));
  fill(expected, 0, 1);  // last round's root payload
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

TEST(Lifecycle, PreadyMisuseReturnsPartitionError) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);
  const mpi::Comm world = mpi::Comm::world(kRanks);
  constexpr Bytes kBytes = 4096;
  constexpr int kParts = 4;
  std::vector<std::vector<std::byte>> plain(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));
  std::vector<std::vector<std::byte>> parted(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    const std::size_t me = static_cast<std::size_t>(ctx.rank());
    PersistentOpts popts;
    popts.coll.segment_size = 256;

    // pready on a non-partitioned handle is always misuse.
    auto op = bcast_init(ctx, world, mpi::MutView{plain[me].data(), kBytes},
                         /*root=*/0, popts);
    EXPECT_EQ(op->pready(0), ErrCode::kErrPartition);

    PersistentOpts parts = popts;
    parts.partitions = kParts;
    auto pop = bcast_init(ctx, world, mpi::MutView{parted[me].data(), kBytes},
                          /*root=*/0, parts);
    EXPECT_EQ(pop->partitions(), kParts);
    // Inactive handle: the round has not started yet.
    EXPECT_EQ(pop->pready(0), ErrCode::kErrPartition);

    if (ctx.rank() == 0) fill(parted[me], 0, 0);
    EXPECT_EQ(pop->start(), ErrCode::kOk);
    EXPECT_EQ(pop->pready(-1), ErrCode::kErrPartition);     // bad index
    EXPECT_EQ(pop->pready(kParts), ErrCode::kErrPartition); // bad index
    EXPECT_EQ(pop->pready(1), ErrCode::kOk);
    EXPECT_EQ(pop->pready(1), ErrCode::kErrPartition);      // duplicate
    EXPECT_EQ(pop->pready(0), ErrCode::kOk);
    EXPECT_EQ(pop->pready(3), ErrCode::kOk);
    EXPECT_EQ(pop->pready(2), ErrCode::kOk);
    co_await pop->wait();
    EXPECT_EQ(pop->last_error(), ErrCode::kOk);
  };
  ASSERT_NO_THROW(engine.run(program));

  std::vector<std::byte> expected(static_cast<std::size_t>(kBytes));
  fill(expected, 0, 0);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(parted[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

TEST(Lifecycle, ParrivedTracksPartitionArrival) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);
  const mpi::Comm world = mpi::Comm::world(kRanks);
  constexpr Bytes kBytes = 4096;
  constexpr int kParts = 4;
  std::vector<std::vector<std::byte>> plain(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));
  std::vector<std::vector<std::byte>> parted(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    const std::size_t me = static_cast<std::size_t>(ctx.rank());
    PersistentOpts popts;
    popts.coll.segment_size = 256;
    bool flag = true;

    // Validation mirrors pready: non-partitioned handle is always misuse.
    auto op = bcast_init(ctx, world, mpi::MutView{plain[me].data(), kBytes},
                         /*root=*/0, popts);
    EXPECT_EQ(op->parrived(0, &flag), ErrCode::kErrPartition);
    EXPECT_FALSE(flag);

    PersistentOpts parts = popts;
    parts.partitions = kParts;
    auto pop = bcast_init(ctx, world, mpi::MutView{parted[me].data(), kBytes},
                          /*root=*/0, parts);
    // Inactive handle and bad indices.
    EXPECT_EQ(pop->parrived(0, &flag), ErrCode::kErrPartition);
    if (ctx.rank() == 0) fill(parted[me], 0, 0);
    EXPECT_EQ(pop->start(), ErrCode::kOk);
    EXPECT_EQ(pop->parrived(-1, &flag), ErrCode::kErrPartition);
    EXPECT_EQ(pop->parrived(kParts, &flag), ErrCode::kErrPartition);

    if (ctx.rank() == 0) {
      // The root's partition "arrives" the moment its own pready lands —
      // the data is local by definition.
      EXPECT_EQ(pop->parrived(2, &flag), ErrCode::kOk);
      EXPECT_FALSE(flag);
      EXPECT_EQ(pop->pready(2), ErrCode::kOk);
      EXPECT_EQ(pop->parrived(2, &flag), ErrCode::kOk);
      EXPECT_TRUE(flag);
      for (int p = 0; p < kParts; ++p) {
        if (p != 2) {
          EXPECT_EQ(pop->pready(p), ErrCode::kOk);
        }
      }
    } else {
      for (int p = 0; p < kParts; ++p) EXPECT_EQ(pop->pready(p), ErrCode::kOk);
      // Poll arrival: every partition must flip to arrived before (or as)
      // the round completes. No co_await between parrived calls, so
      // in_flight cannot change under the inner loop.
      while (pop->in_flight()) {
        bool all = true;
        for (int p = 0; p < kParts; ++p) {
          flag = false;
          EXPECT_EQ(pop->parrived(p, &flag), ErrCode::kOk);
          all = all && flag;
        }
        if (all) break;
        co_await ctx.sleep_for(microseconds(5));
      }
    }
    co_await pop->wait();
    // Completed round: the handle is inactive again.
    EXPECT_EQ(pop->parrived(0, &flag), ErrCode::kErrPartition);
  };
  ASSERT_NO_THROW(engine.run(program));

  std::vector<std::byte> expected(static_cast<std::size_t>(kBytes));
  fill(expected, 0, 0);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(parted[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

TEST(Lifecycle, ParrivedReduceWaitsForChildContributions) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);
  const mpi::Comm pair(std::vector<Rank>{0, 1});
  constexpr Bytes kBytes = 1024;
  constexpr int kParts = 2;
  std::vector<std::vector<std::byte>> bufs(
      2, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    if (!pair.contains(ctx.rank())) co_return;
    const std::size_t me = static_cast<std::size_t>(ctx.rank());
    std::fill(bufs[me].begin(), bufs[me].end(),
              static_cast<std::byte>(1 << ctx.rank()));
    PersistentOpts popts;
    popts.coll.segment_size = 256;
    popts.partitions = kParts;
    auto op = reduce_init(ctx, pair, mpi::MutView{bufs[me].data(), kBytes},
                          mpi::ReduceOp::kBor, mpi::Datatype::kUint8,
                          /*root=*/0, popts);
    EXPECT_EQ(op->start(), ErrCode::kOk);
    bool flag = true;
    if (ctx.rank() == 1) {
      // Leaf: a partition has "arrived" exactly when its own pready lands.
      EXPECT_EQ(op->parrived(0, &flag), ErrCode::kOk);
      EXPECT_FALSE(flag);
      EXPECT_EQ(op->pready(0), ErrCode::kOk);
      EXPECT_EQ(op->parrived(0, &flag), ErrCode::kOk);
      EXPECT_TRUE(flag);
      EXPECT_EQ(op->pready(1), ErrCode::kOk);
    } else {
      // Root with one child: arrival requires the child's fold, which
      // cannot have happened synchronously at start.
      EXPECT_EQ(op->parrived(0, &flag), ErrCode::kOk);
      EXPECT_FALSE(flag);
      EXPECT_EQ(op->pready(0), ErrCode::kOk);
      EXPECT_EQ(op->pready(1), ErrCode::kOk);
      while (op->in_flight()) {
        bool all = true;
        for (int p = 0; p < kParts; ++p) {
          flag = false;
          EXPECT_EQ(op->parrived(p, &flag), ErrCode::kOk);
          all = all && flag;
        }
        if (all) break;
        co_await ctx.sleep_for(microseconds(5));
      }
    }
    co_await op->wait();
    EXPECT_EQ(op->last_error(), ErrCode::kOk);
  };
  ASSERT_NO_THROW(engine.run(program));
  // kBor over {0b01, 0b10} — the root's accumulator holds the fold.
  EXPECT_EQ(bufs[0][0], static_cast<std::byte>(0b11));
}

TEST(Lifecycle, StartOnRevokedCommReturnsRevokedNotFreed) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);
  std::vector<Rank> members{0, 1, 2, 3, 4, 5};
  const mpi::Comm comm(members);
  constexpr Bytes kBytes = 1024;
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    if (!comm.contains(ctx.rank())) co_return;
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    PersistentOpts popts;
    popts.coll.segment_size = 256;
    auto op = bcast_init(ctx, comm, mpi::MutView{mine.data(), kBytes},
                         /*root=*/0, popts);
    if (ctx.rank() == 0) fill(mine, 0, 0);
    EXPECT_EQ(op->start(), ErrCode::kOk);
    co_await op->wait();
    EXPECT_EQ(op->rounds_completed(), 1);

    // ULFM revocation: recoverable, so the code is kErrRevoked — distinct
    // from the freed-handle programming error — and cached plans drop.
    mpi::comm_revoke(ctx, comm);
    EXPECT_EQ(op->start(), ErrCode::kErrRevoked);
    EXPECT_EQ(op->rounds_completed(), 1);
  };
  ASSERT_NO_THROW(engine.run(program));
  EXPECT_EQ(engine.plan_cache().size(), 0);
}

TEST(Lifecycle, StartAfterFreeCommFailsAndDropsCachedPlan) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);
  std::vector<Rank> members{0, 1, 2, 3, 4, 5};
  const mpi::Comm comm(members);
  constexpr Bytes kBytes = 1024;
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    if (!comm.contains(ctx.rank())) co_return;
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    PersistentOpts popts;
    popts.coll.segment_size = 256;
    auto op = bcast_init(ctx, comm, mpi::MutView{mine.data(), kBytes},
                         /*root=*/0, popts);
    if (ctx.rank() == 0) fill(mine, 0, 0);
    EXPECT_EQ(op->start(), ErrCode::kOk);
    co_await op->wait();
    EXPECT_EQ(op->rounds_completed(), 1);

    // MPI_Comm_free: eagerly invalidates the comm's plan-cache entries and
    // fails every later start with a specific code — never a stale replay.
    free_comm(ctx, comm);
    EXPECT_EQ(op->start(), ErrCode::kErrCommFreed);
    EXPECT_EQ(op->rounds_completed(), 1);
  };
  ASSERT_NO_THROW(engine.run(program));
  EXPECT_EQ(engine.plan_cache().size(), 0);

  std::vector<std::byte> expected(static_cast<std::size_t>(kBytes));
  fill(expected, 0, 0);
  for (const Rank r : members) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

// ----------------------------------------------------------------- plan cache

TEST(PlanCacheTest, HandlesWithEqualKeysShareOnePlan) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);
  const mpi::Comm world = mpi::Comm::world(kRanks);
  constexpr Bytes kBytes = 4096;
  std::vector<std::vector<std::byte>> a(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));
  std::vector<std::vector<std::byte>> b = a;

  auto program = [&](Context& ctx) -> sim::Task<> {
    const std::size_t me = static_cast<std::size_t>(ctx.rank());
    PersistentOpts popts;
    popts.coll.segment_size = 512;
    auto h1 = bcast_init(ctx, world, mpi::MutView{a[me].data(), kBytes},
                         /*root=*/0, popts);
    auto h2 = bcast_init(ctx, world, mpi::MutView{b[me].data(), kBytes},
                         /*root=*/0, popts);
    auto h3 = bcast_init(ctx, world, mpi::MutView{b[me].data(), kBytes},
                         /*root=*/1, popts);
    // Same (op, membership, size bucket, root): one shared immutable plan.
    EXPECT_EQ(&h1->plan(), &h2->plan());
    // A different root is a different schedule.
    EXPECT_NE(&h1->plan(), &h3->plan());
    co_return;
  };
  ASSERT_NO_THROW(engine.run(program));

  // Two keys; rank 0 populates each (2 misses), everyone else hits. The sim
  // is deterministic, so the counters are exact: 8 ranks x 3 lookups.
  EXPECT_EQ(engine.plan_cache().size(), 2);
  EXPECT_EQ(engine.plan_cache().misses(), 2u);
  EXPECT_EQ(engine.plan_cache().hits(), 22u);
}

// With a recorder attached the same counters land in the MetricsRegistry
// (plus the tuner's decision-table traffic), so `adaptsim --metrics` and the
// flight recorder surface the cache behaviour without PlanCache accessors.
// Deterministic sim, exact pins: cold start = one miss, every warm handle
// init = a hit, comm free = one invalidation.
TEST(PlanCacheTest, RecorderMetricsCountHitsMissesInvalidations) {
  topo::Machine machine = test_machine();
  runtime::SimEngineOptions options;
  options.recorder = std::make_shared<obs::Recorder>();
  options.tuning = std::make_shared<tune::Tuner>(machine);
  SimEngine engine(machine, options);
  const mpi::Comm world = mpi::Comm::world(kRanks);
  constexpr Bytes kBytes = 4096;
  std::vector<std::vector<std::byte>> a(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));
  std::vector<std::vector<std::byte>> b = a;

  auto program = [&](Context& ctx) -> sim::Task<> {
    const std::size_t me = static_cast<std::size_t>(ctx.rank());
    PersistentOpts popts;
    popts.coll.segment_size = 512;
    // Cold init misses once engine-wide; the second handle (and every other
    // rank's init) replays the shared plan.
    auto h1 = bcast_init(ctx, world, mpi::MutView{a[me].data(), kBytes},
                         /*root=*/0, popts);
    auto h2 = bcast_init(ctx, world, mpi::MutView{b[me].data(), kBytes},
                         /*root=*/0, popts);
    EXPECT_EQ(&h1->plan(), &h2->plan());
    // Fence before freeing: without it the first rank's free_comm kills the
    // shared comm state while later ranks have yet to init, and every one of
    // their lookups would miss on the dead liveness guard.
    co_await barrier(ctx, world);
    free_comm(ctx, world);
    co_return;
  };
  ASSERT_NO_THROW(engine.run(program));

  const obs::MetricsRegistry& m = options.recorder->metrics();
  // 8 ranks x 2 lookups on one key: the first populates, 15 replay.
  EXPECT_EQ(m.counter_value("plan_cache.misses"), 1);
  EXPECT_EQ(m.counter_value("plan_cache.hits"), 15);
  // free_comm eagerly drops the comm's single cached plan.
  EXPECT_EQ(m.counter_value("plan_cache.invalidations"), 1);
  EXPECT_EQ(m.counter_value("plan_cache.evictions"), 0);
  // The tuner is consulted only on the plan-cache miss; its own decision
  // table is cold at that point.
  EXPECT_EQ(m.counter_value("tuner.misses"), 1);
  EXPECT_EQ(m.counter_value("tuner.hits"), 0);
  ASSERT_TRUE(m.histograms().contains("tuner.bucket"));
  EXPECT_EQ(m.histograms().at("tuner.bucket").count, 1u);

  // The same stream exists on the timeline as kCache instants.
  int hits = 0, misses = 0, invalidations = 0;
  for (const auto& i : options.recorder->instants()) {
    if (i.cat != obs::Cat::kCache) continue;
    if (i.name == "plan_hit") ++hits;
    if (i.name == "plan_miss") ++misses;
    if (i.name == "plan_invalidate") ++invalidations;
  }
  EXPECT_EQ(misses, 1);
  EXPECT_EQ(hits, 15);
  EXPECT_EQ(invalidations, kRanks);  // every rank's free_comm emits one
}

TEST(PlanCacheTest, FreedCommWithSameFingerprintNeverServesStalePlan) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);
  std::vector<Rank> members;
  for (Rank r = 0; r < kRanks; ++r) members.push_back(r);
  const mpi::Comm comm_a(members);
  const mpi::Comm comm_b(members);   // same ordered members, new state
  const mpi::Comm comm_sync(members);
  // The cache key carries the membership fingerprint; identical member lists
  // collide on purpose (that is the sharing). Staleness is caught by the
  // weak CommState guard, which this test drives through the lazy path.
  ASSERT_EQ(comm_a.fingerprint(), comm_b.fingerprint());
  constexpr Bytes kBytes = 2048;
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    PersistentOpts popts;
    popts.coll.segment_size = 256;
    auto bar = barrier_init(ctx, comm_sync);
    auto h1 = bcast_init(ctx, comm_a, mpi::MutView{mine.data(), kBytes},
                         /*root=*/0, popts);

    // Make sure every rank built h1 before anyone frees the communicator.
    EXPECT_EQ(bar->start(), ErrCode::kOk);
    co_await bar->wait();

    // Plain Comm::free (NOT coll::free_comm): the cache entry survives until
    // a lookup revalidates it — the lazy invalidation path.
    comm_a.free();
    auto h2 = bcast_init(ctx, comm_b, mpi::MutView{mine.data(), kBytes},
                         /*root=*/0, popts);
    EXPECT_NE(&h1->plan(), &h2->plan());
    EXPECT_EQ(h1->start(), ErrCode::kErrCommFreed);

    if (ctx.rank() == 0) fill(mine, 0, 7);
    EXPECT_EQ(h2->start(), ErrCode::kOk);
    co_await h2->wait();
    EXPECT_EQ(h2->last_error(), ErrCode::kOk);
  };
  ASSERT_NO_THROW(engine.run(program));

  std::vector<std::byte> expected(static_cast<std::size_t>(kBytes));
  fill(expected, 0, 7);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

// -------------------------------------------------------------- interleaving

TEST(Overlap, IndependentHandlesPipelineAcrossStarts) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);
  const mpi::Comm world = mpi::Comm::world(kRanks);
  constexpr Bytes kBcastBytes = 4096;
  constexpr std::size_t kElems = 256;
  constexpr int kRounds = 3;
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBcastBytes)));
  std::vector<std::vector<std::int32_t>> accum(
      kRanks, std::vector<std::int32_t>(kElems));

  auto program = [&](Context& ctx) -> sim::Task<> {
    const std::size_t me = static_cast<std::size_t>(ctx.rank());
    PersistentOpts popts;
    popts.coll.segment_size = 256;
    auto bc = bcast_init(ctx, world, mpi::MutView{bufs[me].data(), kBcastBytes},
                         /*root=*/0, popts);
    auto ar = allreduce_init(
        ctx, world,
        mpi::MutView{reinterpret_cast<std::byte*>(accum[me].data()),
                     static_cast<Bytes>(kElems * 4)},
        mpi::ReduceOp::kSum, mpi::Datatype::kInt32, popts);

    for (int round = 0; round < kRounds; ++round) {
      if (ctx.rank() == 0) fill(bufs[me], 0, round);
      for (std::size_t i = 0; i < kElems; ++i) {
        accum[me][i] =
            static_cast<std::int32_t>(ctx.rank() + round * 1000 + i);
      }
      // Both rounds in flight at once: independent handles own disjoint tag
      // blocks, so overlapping starts pipeline instead of cross-matching.
      EXPECT_EQ(bc->start(), ErrCode::kOk);
      EXPECT_EQ(ar->start(), ErrCode::kOk);
      EXPECT_TRUE(bc->in_flight());
      EXPECT_TRUE(ar->in_flight());
      co_await bc->wait();
      co_await ar->wait();
      EXPECT_EQ(bc->rounds_completed(), round + 1);
      EXPECT_EQ(ar->rounds_completed(), round + 1);

      // Check this round's allreduce result right away (every round has a
      // different expected sum).
      for (std::size_t i = 0; i < kElems; ++i) {
        const std::int32_t want = static_cast<std::int32_t>(
            kRanks * (kRanks - 1) / 2 + kRanks * (round * 1000) +
            kRanks * static_cast<std::int32_t>(i));
        EXPECT_EQ(accum[me][i], want) << "round " << round << " elem " << i;
        if (accum[me][i] != want) co_return;
      }
    }
  };
  ASSERT_NO_THROW(engine.run(program));

  std::vector<std::byte> expected(static_cast<std::size_t>(kBcastBytes));
  fill(expected, 0, kRounds - 1);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

// --------------------------------------------------------- schedule identity

TEST(ScheduleIdentity, EveryStartReplaysTheSameTransferSchedule) {
  topo::Machine machine = test_machine();
  runtime::SimEngineOptions options;
  options.recorder = std::make_shared<obs::Recorder>();
  SimEngine engine(machine, options);
  const mpi::Comm world = mpi::Comm::world(kRanks);
  constexpr Bytes kBytes = 4096;
  constexpr int kRounds = 5;
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    PersistentOpts popts;
    popts.coll.segment_size = 512;
    auto op = bcast_init(ctx, world, mpi::MutView{mine.data(), kBytes},
                         /*root=*/0, popts);
    auto bar = barrier_init(ctx, world);
    for (int round = 0; round < kRounds; ++round) {
      if (ctx.rank() == 0) fill(mine, 0, round);
      EXPECT_EQ(op->start(), ErrCode::kOk);
      co_await op->wait();
      // The barrier fences rounds: every round-r data transfer is posted
      // (and delivered) before any rank can post a round-r+1 transfer, so
      // the recorder's chronological transfer list chunks cleanly by round.
      EXPECT_EQ(bar->start(), ErrCode::kOk);
      co_await bar->wait();
    }
  };
  ASSERT_NO_THROW(engine.run(program));

  // Data transfers only: the barrier's zero-byte frames are the fences, not
  // part of the replayed payload schedule.
  std::size_t count = 0;
  for (const auto& t : options.recorder->transfers()) {
    if (t.bytes > 0) ++count;
  }
  ASSERT_GT(count, 0u);
  ASSERT_EQ(count % kRounds, 0u) << "rounds posted different transfer counts";
  // Chunk into per-round signatures of (src, dst, bytes, kind) sequences.
  const std::size_t per_round = count / kRounds;
  std::vector<std::string> sigs;
  std::size_t i = 0;
  std::string chunk;
  for (const auto& t : options.recorder->transfers()) {
    if (t.bytes == 0) continue;
    chunk += std::to_string(t.src) + ">" + std::to_string(t.dst) + ":" +
             std::to_string(t.bytes) + "/" + std::to_string(t.kind) + ";";
    if (++i % per_round == 0) {
      sigs.push_back(chunk);
      chunk.clear();
    }
  }
  ASSERT_EQ(sigs.size(), static_cast<std::size_t>(kRounds));
  // Round 0 starts from a cold, perfectly synchronised state; rounds 1+ are
  // the steady state and must replay the identical schedule hash-for-hash.
  for (std::size_t r = 2; r < sigs.size(); ++r) {
    EXPECT_EQ(fnv1a64(sigs[r]), fnv1a64(sigs[1]))
        << "round " << r << " diverged from round 1";
  }
}

// ------------------------------------------------------- allocation freedom

TEST(AllocationFree, HundredStartsAllocateNothingAfterWarmup) {
  topo::Machine machine = test_machine();
  SimEngine engine(machine);  // no recorder: tracing buffers would allocate
  const mpi::Comm world = mpi::Comm::world(kRanks);
  constexpr Bytes kBytes = 4096;
  constexpr int kWarm = 120;
  constexpr int kMeasured = 100;
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(static_cast<std::size_t>(kBytes)));
  std::uint64_t before = 0;
  std::uint64_t after = 0;

  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    PersistentOpts popts;
    popts.coll.segment_size = 256;
    auto op = bcast_init(ctx, world, mpi::MutView{mine.data(), kBytes},
                         /*root=*/0, popts);
    auto bar = barrier_init(ctx, world);
    // One flat loop, no helper coroutine: a nested coroutine frame would
    // itself heap-allocate per call and poison the measurement. Rounds
    // 0..kWarm-1 warm the event slab, the flow/pending/request pools, the
    // route cache, and the matcher buckets to steady-state depth; the
    // counter snapshots bracket the measured rounds.
    for (int r = 0; r < kWarm + kMeasured; ++r) {
      if (r == kWarm && ctx.rank() == 0) before = g_alloc_count.load();
      if (ctx.rank() == 0) fill(mine, 0, 0);
      EXPECT_EQ(op->start(), ErrCode::kOk);
      co_await op->wait();
      EXPECT_EQ(bar->start(), ErrCode::kOk);
      co_await bar->wait();
    }
    // Rank 0 exits the final barrier only after every rank entered it, so
    // everything between the snapshots is steady-state replay.
    if (ctx.rank() == 0) after = g_alloc_count.load();
  };
  ASSERT_NO_THROW(engine.run(program));
  EXPECT_EQ(after - before, 0u)
      << "persistent start/wait rounds touched the heap in steady state";
}

}  // namespace
}  // namespace adapt::coll
