// Table 1: ASP (parallel Floyd-Warshall all-pairs shortest path) with 1K
// ranks on the Cori model — Communication time and Total runtime per MPI
// library.
//
// Scale note. The paper states "problem size equals 256K" and per-iteration
// broadcasts of ~1 MB (N x type_size). A square 256K matrix cannot be stored
// (256 TB), so we reproduce the workload the text actually describes: every
// outer iteration broadcasts a 1 MB row (256K x int32) from its rotating
// owner, followed by the owner-block relaxation, modelled as gamma-cost
// compute. The iteration count is sampled (default 128) and the split
// communication/total is reported per iteration and as totals — the paper's
// comparison is the RATIO between libraries and the communication share,
// both of which are scale-invariant here.
//
//   table1_asp [--ranks 1024] [--iters 256] [--rowbytes 1048576]
//              [--json [FILE]]
#include <iostream>

#include "src/bench/cli.hpp"
#include "src/bench/report.hpp"
#include "src/coll/library.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace adapt;
  bench::Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 1024));
  const int iters = static_cast<int>(cli.get_int("iters", 128));
  const Bytes row_bytes = cli.get_int("rowbytes", mib(1));
  const auto setup = bench::make_cluster("cori", (ranks + 31) / 32, ranks);
  const mpi::Comm world = mpi::Comm::world(ranks);

  // Per-iteration relaxation work per rank: rows_per_rank x row_elems min-plus
  // updates. With the paper's setup communication dominates, so the block is
  // small; we give each rank 4 rows of compute per iteration at ~0.3 ns per
  // element update.
  const Bytes row_elems = row_bytes / 4;
  const TimeNs relax_cost =
      static_cast<TimeNs>(4.0 * static_cast<double>(row_elems) * 0.3);

  std::cout << "== Table 1: ASP with " << ranks << " ranks on Cori, "
            << iters << " sampled iterations of " << format_bytes(row_bytes)
            << " row broadcasts ==\n\n";

  Table table({"library", "comm(s)", "total(s)", "comm-share", "ms/iter"});
  // The paper's Table 1 columns: Cray, Intel MPI, OMPI-adapt, OMPI-tuned.
  for (const std::string& name :
       {std::string("cray"), std::string("intel"), std::string("ompi-adapt"),
        std::string("ompi-default")}) {
    auto lib = coll::make_library(name, setup.machine);
    runtime::SimEngine engine(setup.machine);
    std::vector<TimeNs> comm(static_cast<std::size_t>(ranks), 0);

    auto program = [&](runtime::Context& ctx) -> sim::Task<> {
      mpi::MutView row{nullptr, row_bytes};
      const auto me = static_cast<std::size_t>(ctx.rank());
      for (int k = 0; k < iters; ++k) {
        const Rank owner = k % ranks;
        const TimeNs t0 = ctx.now();
        co_await lib->bcast(ctx, world, row, owner);
        comm[me] += ctx.now() - t0;
        co_await ctx.compute(relax_cost);
      }
    };
    const auto result = engine.run(program);

    TimeNs comm_sum = 0;
    for (TimeNs t : comm) comm_sum += t;
    const double comm_s = to_sec(comm_sum / ranks);
    const double total_s = to_sec(result.total_time);
    char c[32], t[32], share[32], per[32];
    std::snprintf(c, sizeof c, "%.2f", comm_s);
    std::snprintf(t, sizeof t, "%.2f", total_s);
    std::snprintf(share, sizeof share, "%.0f%%", 100.0 * comm_s / total_s);
    std::snprintf(per, sizeof per, "%.2f", total_s * 1e3 / iters);
    table.add_row({name, c, t, share, per});
  }
  table.print(std::cout);
  std::cout << "\nPaper's Table 1 (256K iterations): communication 2.98 / "
               "15.26 / 1.99 / 14.18 s,\ntotal 6.20 / 18.46 / 5.21 / 17.40 s "
               "for Cray / Intel / OMPI-adapt / OMPI-tuned.\n";
  bench::JsonReport report("table1_asp");
  report.set_meta("ranks", ranks);
  report.set_meta("iters", iters);
  report.set_meta("row_bytes", row_bytes);
  report.add_table("ASP communication/total split", table);
  return bench::emit_json(cli, report) ? 0 : 1;
}
