#include "src/coll/nonblocking.hpp"

namespace adapt::coll {

namespace {

/// Launches a collective coroutine detached and wires its completion (or
/// failure) into the request handle.
CollRequestPtr launch(sim::Task<> op) {
  auto request = std::make_shared<CollRequest>();
  auto failure = std::make_shared<std::exception_ptr>();
  sim::run_detached(std::move(op), [request, failure](std::exception_ptr ep) {
    *failure = ep;
    request->set_failure(failure);
    request->trigger().fire();
  });
  return request;
}

}  // namespace

CollRequestPtr ibcast(runtime::Context& ctx, const mpi::Comm& comm,
                      mpi::MutView buffer, Rank root, const Tree& tree,
                      const CollOpts& opts) {
  const Segmenter segs(buffer.size, opts.segment_size);
  const Tag base_tag = ctx.alloc_tags(segs.count());
  return launch(bcast_tagged(ctx, comm, buffer, root, tree, Style::kAdapt,
                             opts, base_tag));
}

CollRequestPtr ireduce(runtime::Context& ctx, const mpi::Comm& comm,
                       mpi::MutView accum, mpi::ReduceOp op,
                       mpi::Datatype dtype, Rank root, const Tree& tree,
                       const CollOpts& opts) {
  const Segmenter segs(accum.size, opts.segment_size);
  const Tag base_tag = ctx.alloc_tags(segs.count());
  return launch(reduce_tagged(ctx, comm, accum, op, dtype, root, tree,
                              Style::kAdapt, opts, base_tag));
}

}  // namespace adapt::coll
