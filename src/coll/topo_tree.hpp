// Topology-aware communication tree (paper §3.2).
//
// Processes are grouped bottom-up by hardware: cores sharing a socket form a
// group, socket leaders within a node form a group, node leaders form the top
// group. Each group gets its own tree shape — selectable per level, since
// each level's network is homogeneous and independent (paper Fig. 5) — and
// leaders glue the levels into one spanning tree over a SINGLE communicator.
// Every rank therefore participates in one seamless pipeline, and a leader's
// child list puts upper-level (slower-lane) children first so long-haul
// transfers start earliest.
#pragma once

#include "src/coll/tree.hpp"
#include "src/mpi/comm.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::coll {

/// Per-level tree shapes. The paper's ADAPT configuration uses chains at
/// every level (§5.2.1, after Pješivac-Grbović et al.).
struct TopoTreeSpec {
  TreeKind core_level = TreeKind::kChain;    ///< ranks within one socket
  TreeKind socket_level = TreeKind::kChain;  ///< socket leaders within a node
  TreeKind node_level = TreeKind::kChain;    ///< node leaders across nodes
  int radix = 4;                             ///< for k-ary / k-nomial levels
};

/// Builds the multi-level tree over the local ranks of `comm`, rooted at
/// `root` (local). The root is made leader of its socket and node so it is
/// the global tree root.
Tree build_topo_tree(const topo::Machine& machine, const mpi::Comm& comm,
                     Rank root, const TopoTreeSpec& spec = {});

}  // namespace adapt::coll
