#include "src/topo/presets.hpp"

#include <cstdlib>
#include <sstream>

#include "src/support/error.hpp"

namespace adapt::topo {

namespace {

/// LinkParams from (latency ns, bandwidth GB/s). 1 GB/s == 1 byte/ns.
LinkParams link(TimeNs alpha_ns, double bw_gbs) {
  return LinkParams{alpha_ns, 1.0 / bw_gbs};
}

}  // namespace

MachineSpec cori(int nodes) {
  MachineSpec m;
  m.name = "cori";
  m.nodes = nodes;
  m.sockets_per_node = 2;
  m.cores_per_socket = 16;
  m.intra_socket = link(300, 8.0);    // shared-memory copy-in/copy-out
  m.shm_parallel = 8.0;               // ~64 GB/s socket memory system
  m.inter_socket = link(500, 6.0);    // QPI hop
  m.inter_node = link(1400, 8.0);     // Cray Aries
  m.memcpy_beta = 0.12;
  m.unexpected_overhead = 700;
  m.reduce_gamma = 0.25;
  m.cpu_overhead = 150;
  return m;
}

MachineSpec stampede2(int nodes) {
  MachineSpec m;
  m.name = "stampede2";
  m.nodes = nodes;
  m.sockets_per_node = 2;
  m.cores_per_socket = 24;
  m.intra_socket = link(280, 9.0);
  m.shm_parallel = 9.0;               // ~80 GB/s socket memory system
  m.inter_socket = link(480, 7.0);
  m.inter_node = link(1100, 12.0);    // Intel Omni-Path 100 Gb
  m.memcpy_beta = 0.11;
  m.unexpected_overhead = 650;
  m.reduce_gamma = 0.22;
  m.cpu_overhead = 140;
  return m;
}

MachineSpec psg(int nodes) {
  MachineSpec m;
  m.name = "psg";
  m.nodes = nodes;
  m.sockets_per_node = 2;
  m.cores_per_socket = 10;
  m.gpus_per_socket = 2;              // 4 K40 per node
  m.intra_socket = link(350, 7.0);
  m.inter_socket = link(550, 5.5);
  m.inter_node = link(1700, 5.0);     // 40 Gb/s FDR InfiniBand
  m.pcie = link(6000, 10.0);          // PCIe gen3 x16 incl. cudaMemcpy setup
  m.nic_bus = link(1500, 6.0);        // NIC's PCIe attachment
  m.memcpy_beta = 0.15;
  m.unexpected_overhead = 800;
  m.reduce_gamma = 0.28;
  m.gpu_reduce_gamma = 0.02;          // K40 is memory-bound at ~200 GB/s
  m.gpu_kernel_launch = 8000;
  m.cpu_overhead = 180;
  return m;
}

MachineSpec han_cluster(int nodes, int ppn) {
  ADAPT_CHECK(nodes > 0 && ppn > 0);
  MachineSpec m;
  m.name = "han-cluster";
  m.nodes = nodes;
  m.sockets_per_node = 1;
  m.cores_per_socket = ppn;
  m.intra_socket = link(300, 8.0);  // shadowed by the SHM channel below
  m.shm_parallel = 8.0;
  m.inter_socket = link(500, 6.0);
  m.inter_node = link(1400, 8.0);   // Cray Aries
  m.shm_node = link(400, 10.0);     // per-pair SHM copy path
  m.shm_node_parallel = 6.0;        // ~60 GB/s node memory system
  m.memcpy_beta = 0.12;
  m.unexpected_overhead = 700;
  m.reduce_gamma = 0.25;
  m.cpu_overhead = 150;
  return m;
}

MachineSpec preset(const std::string& name, int nodes) {
  ADAPT_CHECK(nodes > 0);
  if (name == "cori") return cori(nodes);
  if (name == "stampede2") return stampede2(nodes);
  if (name == "psg") return psg(nodes);
  throw Error("unknown cluster preset: " + name);
}

MachineSpec parse_spec(const std::string& text) {
  MachineSpec m = cori(1);
  m.name = "custom";
  std::istringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    ADAPT_CHECK(eq != std::string::npos) << "bad spec item: " << item;
    const std::string key = item.substr(0, eq);
    const double value = std::strtod(item.c_str() + eq + 1, nullptr);
    if (key == "nodes") {
      m.nodes = static_cast<int>(value);
    } else if (key == "sockets") {
      m.sockets_per_node = static_cast<int>(value);
    } else if (key == "cores") {
      m.cores_per_socket = static_cast<int>(value);
    } else if (key == "gpus") {
      m.gpus_per_socket = static_cast<int>(value);
    } else if (key == "alpha_socket") {
      m.intra_socket.alpha = static_cast<TimeNs>(value);
    } else if (key == "bw_socket") {
      m.intra_socket.beta_ns_per_byte = 1.0 / value;
    } else if (key == "alpha_qpi") {
      m.inter_socket.alpha = static_cast<TimeNs>(value);
    } else if (key == "bw_qpi") {
      m.inter_socket.beta_ns_per_byte = 1.0 / value;
    } else if (key == "alpha_node") {
      m.inter_node.alpha = static_cast<TimeNs>(value);
    } else if (key == "bw_node") {
      m.inter_node.beta_ns_per_byte = 1.0 / value;
    } else if (key == "alpha_pcie") {
      m.pcie.alpha = static_cast<TimeNs>(value);
    } else if (key == "bw_pcie") {
      m.pcie.beta_ns_per_byte = 1.0 / value;
    } else if (key == "ppn") {
      // "ranks per node" shorthand: single-socket nodes of `ppn` cores with
      // the first-class SHM channel enabled at han_cluster defaults (override
      // with alpha_shm / bw_shm / shm_par).
      m.sockets_per_node = 1;
      m.cores_per_socket = static_cast<int>(value);
      if (!m.has_shm_channel()) {
        m.shm_node = link(400, 10.0);
        m.shm_node_parallel = 6.0;
      }
    } else if (key == "alpha_shm") {
      m.shm_node.alpha = static_cast<TimeNs>(value);
    } else if (key == "bw_shm") {
      m.shm_node.beta_ns_per_byte = 1.0 / value;
    } else if (key == "shm_par") {
      m.shm_node_parallel = value;
    } else if (key == "gamma") {
      m.reduce_gamma = value;
    } else if (key == "gpu_gamma") {
      m.gpu_reduce_gamma = value;
    } else {
      throw Error("unknown machine spec key: " + key);
    }
  }
  ADAPT_CHECK(m.nodes > 0 && m.sockets_per_node > 0 && m.cores_per_socket > 0);
  return m;
}

}  // namespace adapt::topo
