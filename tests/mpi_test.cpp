#include <gtest/gtest.h>

#include <cstring>

#include "src/mpi/comm.hpp"
#include "src/mpi/match.hpp"
#include "src/mpi/op.hpp"
#include "src/mpi/p2p.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/topo/presets.hpp"

namespace adapt::mpi {
namespace {

using runtime::Context;
using runtime::SimEngine;

// ----------------------------------------------------------------- ops ---

TEST(Op, SumInt32) {
  std::int32_t dst[3] = {1, 2, 3};
  const std::int32_t src[3] = {10, 20, 30};
  apply(ReduceOp::kSum, Datatype::kInt32, reinterpret_cast<std::byte*>(dst),
        reinterpret_cast<const std::byte*>(src), sizeof dst);
  EXPECT_EQ(dst[0], 11);
  EXPECT_EQ(dst[1], 22);
  EXPECT_EQ(dst[2], 33);
}

TEST(Op, MaxDouble) {
  double dst[2] = {1.5, 9.0};
  const double src[2] = {2.5, 3.0};
  apply(ReduceOp::kMax, Datatype::kDouble, reinterpret_cast<std::byte*>(dst),
        reinterpret_cast<const std::byte*>(src), sizeof dst);
  EXPECT_DOUBLE_EQ(dst[0], 2.5);
  EXPECT_DOUBLE_EQ(dst[1], 9.0);
}

TEST(Op, MinProdBitwise) {
  std::int64_t dst[2] = {6, 12};
  const std::int64_t src[2] = {4, 10};
  apply(ReduceOp::kMin, Datatype::kInt64, reinterpret_cast<std::byte*>(dst),
        reinterpret_cast<const std::byte*>(src), sizeof dst);
  EXPECT_EQ(dst[0], 4);
  apply(ReduceOp::kProd, Datatype::kInt64, reinterpret_cast<std::byte*>(dst),
        reinterpret_cast<const std::byte*>(src), sizeof dst);
  EXPECT_EQ(dst[0], 16);
  apply(ReduceOp::kBand, Datatype::kInt64, reinterpret_cast<std::byte*>(dst),
        reinterpret_cast<const std::byte*>(src), sizeof dst);
  EXPECT_EQ(dst[0], 0);
}

TEST(Op, BitwiseRejectsFloat) {
  float dst = 1.f, src = 2.f;
  EXPECT_THROW(apply(ReduceOp::kBor, Datatype::kFloat,
                     reinterpret_cast<std::byte*>(&dst),
                     reinterpret_cast<const std::byte*>(&src), sizeof dst),
               Error);
}

TEST(Op, RejectsMisalignedByteCount) {
  std::int32_t dst = 0, src = 0;
  EXPECT_THROW(apply(ReduceOp::kSum, Datatype::kInt32,
                     reinterpret_cast<std::byte*>(&dst),
                     reinterpret_cast<const std::byte*>(&src), 3),
               Error);
}

// -------------------------------------------------------------- matcher ---

Envelope make_env(Rank src, Tag tag, Bytes size = 0) {
  Envelope e;
  e.src = src;
  e.dst = 0;
  e.tag = tag;
  e.size = size;
  return e;
}

PostedRecv make_recv(Rank src, Tag tag) {
  return PostedRecv{std::make_shared<Request>(Request::Kind::kRecv, src, tag, 64),
                    MutView{}, src, tag};
}

TEST(Matcher, PostedThenArriveMatches) {
  Matcher m;
  EXPECT_FALSE(m.post(make_recv(1, 7)).has_value());
  const auto hit = m.arrive(make_env(1, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(m.posted_count(), 0u);
}

TEST(Matcher, ArriveThenPostIsUnexpected) {
  Matcher m;
  EXPECT_FALSE(m.arrive(make_env(2, 5)).has_value());
  EXPECT_EQ(m.unexpected_count(), 1u);
  const auto env = m.post(make_recv(2, 5));
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->src, 2);
  EXPECT_EQ(m.unexpected_count(), 0u);
  EXPECT_EQ(m.total_unexpected(), 1u);
}

TEST(Matcher, TagMismatchDoesNotMatch) {
  Matcher m;
  m.post(make_recv(1, 7));
  EXPECT_FALSE(m.arrive(make_env(1, 8)).has_value());
  EXPECT_EQ(m.posted_count(), 1u);
  EXPECT_EQ(m.unexpected_count(), 1u);
}

TEST(Matcher, SourceWildcard) {
  Matcher m;
  m.post(make_recv(kAnyRank, 9));
  EXPECT_TRUE(m.arrive(make_env(5, 9)).has_value());
}

TEST(Matcher, TagWildcard) {
  Matcher m;
  m.post(make_recv(3, kAnyTag));
  EXPECT_TRUE(m.arrive(make_env(3, 1234)).has_value());
}

TEST(Matcher, FifoAmongEqualMatches) {
  Matcher m;
  auto r1 = make_recv(1, 7);
  auto r2 = make_recv(1, 7);
  const auto* first = r1.request.get();
  m.post(std::move(r1));
  m.post(std::move(r2));
  const auto hit = m.arrive(make_env(1, 7));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->request.get(), first);
}

// --------------------------------------------------- engine-level P2P ---

topo::Machine tiny_machine(int ranks = 8) {
  static topo::Machine m(topo::cori(1), 32);
  (void)ranks;
  return m;
}

TEST(P2P, BlockingSendRecvMovesRealBytes) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  std::vector<std::byte> out(64), in(64);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::byte(i);

  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 5, ConstView{out.data(), 64});
    } else {
      co_await ctx.recv(0, 5, MutView{in.data(), 64});
    }
  };
  engine.run(program);
  EXPECT_EQ(std::memcmp(out.data(), in.data(), 64), 0);
}

TEST(P2P, TransferTimeMatchesLane) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  TimeNs finish = -1;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 1, ConstView{nullptr, kib(64)});
    } else {
      co_await ctx.recv(0, 1, MutView{nullptr, kib(64)});
      finish = ctx.now();
    }
  };
  engine.run(program);
  const TimeNs wire = m.spec().intra_socket.time(kib(64));
  EXPECT_GE(finish, wire);
  // Overheads (posting, matching) are small next to the wire time.
  EXPECT_LE(finish, wire + microseconds(5));
}

TEST(P2P, UnexpectedMessageCostsMore) {
  topo::Machine m(topo::cori(1), 4);
  // Race-free way to force the unexpected path: receiver sleeps first.
  TimeNs expected_done = -1, unexpected_done = -1;
  {
    SimEngine engine(m);
    auto program = [&](Context& ctx) -> sim::Task<> {
      if (ctx.rank() == 0) {
        co_await ctx.send(1, 1, ConstView{nullptr, kib(256)});
      } else if (ctx.rank() == 1) {
        co_await ctx.recv(0, 1, MutView{nullptr, kib(256)});
        expected_done = ctx.now();
      }
    };
    engine.run(program);
  }
  {
    SimEngine engine(m);
    auto program = [&](Context& ctx) -> sim::Task<> {
      if (ctx.rank() == 0) {
        co_await ctx.send(1, 1, ConstView{nullptr, kib(256)});
      } else if (ctx.rank() == 1) {
        co_await ctx.sleep_for(milliseconds(1));  // message arrives first
        co_await ctx.recv(0, 1, MutView{nullptr, kib(256)});
        unexpected_done = ctx.now();
      }
    };
    engine.run(program);
  }
  // The expected path completes around the wire time; the unexpected path
  // completes only after the late irecv pays allocation + copy.
  const TimeNs copy_cost =
      m.spec().unexpected_overhead +
      static_cast<TimeNs>(m.spec().memcpy_beta *
                          static_cast<double>(kib(256)));
  EXPECT_GT(expected_done, 0);
  EXPECT_GE(unexpected_done, milliseconds(1) + copy_cost);
}

TEST(P2P, WaitAllCompletesAllRequests) {
  topo::Machine m = tiny_machine();
  SimEngine engine(m);
  int received = 0;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      std::vector<RequestPtr> sends;
      for (Rank r = 1; r < 8; ++r) {
        sends.push_back(ctx.isend(r, 3, ConstView{nullptr, kib(4)}));
      }
      co_await wait_all(sends);
      for (const auto& s : sends) EXPECT_TRUE(s->complete());
    } else if (ctx.rank() < 8) {
      co_await ctx.recv(0, 3, MutView{nullptr, kib(4)});
      ++received;
    }
  };
  engine.run(program);
  EXPECT_EQ(received, 7);
}

TEST(P2P, WaitAnyReturnsACompletedIndex) {
  topo::Machine m(topo::cori(2), 64);
  SimEngine engine(m);
  std::size_t winner = 99;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      // Big inter-node send vs tiny intra-socket send: the tiny one wins.
      std::vector<RequestPtr> reqs;
      reqs.push_back(ctx.isend(32, 1, ConstView{nullptr, mib(4)}));
      reqs.push_back(ctx.isend(1, 1, ConstView{nullptr, 64}));
      winner = co_await wait_any(reqs);
      co_await wait_all(reqs);
    } else if (ctx.rank() == 32) {
      co_await ctx.recv(0, 1, MutView{nullptr, mib(4)});
    } else if (ctx.rank() == 1) {
      co_await ctx.recv(0, 1, MutView{nullptr, 64});
    }
  };
  engine.run(program);
  EXPECT_EQ(winner, 1u);
}

TEST(P2P, CompletionCallbackFires) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  bool send_cb = false, recv_cb = false;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      auto req = ctx.isend(1, 1, ConstView{nullptr, kib(1)});
      req->set_completion_cb([&](Request& r) {
        send_cb = true;
        EXPECT_TRUE(r.complete());
      });
      co_await wait(req);
    } else {
      auto req = ctx.irecv(0, 1, MutView{nullptr, kib(1)});
      req->set_completion_cb([&](Request& r) {
        recv_cb = true;
        EXPECT_EQ(r.actual_src(), 0);
        EXPECT_EQ(r.actual_size(), kib(1));
      });
      co_await wait(req);
    }
  };
  engine.run(program);
  EXPECT_TRUE(send_cb);
  EXPECT_TRUE(recv_cb);
}

TEST(P2P, WildcardRecvReportsActualSource) {
  topo::Machine m(topo::cori(1), 4);
  SimEngine engine(m);
  Rank seen = -2;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 3) {
      co_await ctx.send(0, 8, ConstView{nullptr, 16});
    } else if (ctx.rank() == 0) {
      auto req = ctx.irecv(kAnyRank, 8, MutView{nullptr, 16});
      co_await wait(req);
      seen = req->actual_src();
    }
  };
  engine.run(program);
  EXPECT_EQ(seen, 3);
}

TEST(P2P, OverflowingMessageThrows) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 0) {
      co_await ctx.send(1, 1, ConstView{nullptr, 128});
    } else {
      co_await ctx.recv(0, 1, MutView{nullptr, 64});
    }
  };
  EXPECT_THROW(engine.run(program), Error);
}

TEST(P2P, DeadlockIsDiagnosed) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() == 1) {
      co_await ctx.recv(0, 1, MutView{nullptr, 8});  // never sent
    }
    co_return;
  };
  EXPECT_THROW(engine.run(program), Error);
}

TEST(Comm, WorldAndMembership) {
  const Comm w = Comm::world(8);
  EXPECT_EQ(w.size(), 8);
  EXPECT_EQ(w.global(3), 3);
  EXPECT_EQ(w.local_of(5), 5);
  const Comm sub({4, 2, 7});
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.global(0), 4);
  EXPECT_EQ(sub.local_of(7), 2);
  EXPECT_EQ(sub.local_of(3), kAnyRank);
  EXPECT_TRUE(sub.contains(2));
  EXPECT_FALSE(sub.contains(0));
}

TEST(Comm, RejectsDuplicates) {
  EXPECT_THROW(Comm({1, 2, 1}), Error);
}

// --------------------------------------------- argument validation ---

TEST(Validation, OutOfRangeRankFailsTheRequest) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    std::byte buf[8];
    auto too_big = ctx.isend(7, 1, ConstView{buf, 8});
    EXPECT_TRUE(too_big->complete());
    EXPECT_TRUE(too_big->failed());
    EXPECT_EQ(too_big->error(), ErrCode::kErrRank);
    auto negative = ctx.irecv(-2, 1, MutView{buf, 8});
    EXPECT_EQ(negative->error(), ErrCode::kErrRank);
    auto self = ctx.isend(0, 1, ConstView{buf, 8});
    EXPECT_EQ(self->error(), ErrCode::kErrRank);
    // Wildcard receives stay legal.
    auto wild = ctx.irecv(kAnyRank, 1, MutView{buf, 8});
    EXPECT_FALSE(wild->failed());
  };
  engine.run(program);
}

TEST(Validation, NegativeCountFailsTheRequest) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    std::byte buf[8];
    auto req = ctx.isend(1, 1, ConstView{buf, -4});
    EXPECT_TRUE(req->complete());
    EXPECT_EQ(req->error(), ErrCode::kErrCount);
    co_return;
  };
  engine.run(program);
}

TEST(Validation, MismatchedDatatypeExtentFailsTheRequest) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    std::byte buf[10];
    SendOpts opts;
    opts.dtype = Datatype::kInt32;
    auto send = ctx.endpoint().isend(1, 1, ConstView{buf, 10}, opts);
    EXPECT_EQ(send->error(), ErrCode::kErrType);  // 10 % 4 != 0
    auto recv = ctx.endpoint().irecv(1, 1, MutView{buf, 10}, Datatype::kInt32);
    EXPECT_EQ(recv->error(), ErrCode::kErrType);
    // A multiple of the extent is fine.
    auto ok = ctx.endpoint().isend(1, 1, ConstView{buf, 8}, opts);
    EXPECT_FALSE(ok->failed());
    co_await wait(ctx.endpoint().irecv(1, 2, MutView{buf, 8}));
    co_return;
  };
  auto peer = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 1) co_return;
    std::byte buf[8];
    co_await ctx.recv(0, 1, MutView{buf, 8});
    co_await ctx.send(0, 2, ConstView{buf, 8});
  };
  auto program_all = [&](Context& ctx) -> sim::Task<> {
    co_await program(ctx);
    co_await peer(ctx);
  };
  engine.run(program_all);
}

TEST(Validation, WaitOnFailedRequestThrowsWithTheCode) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  ErrCode seen = ErrCode::kOk;
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    std::byte buf[8];
    try {
      co_await wait(ctx.isend(5, 1, ConstView{buf, 8}));
    } catch (const FaultError& e) {
      seen = e.code();
    }
  };
  engine.run(program);
  EXPECT_EQ(seen, ErrCode::kErrRank);
}

// -------------------------------------------------------------- poison ---

TEST(Poison, FailsPendingAndFutureRequests) {
  topo::Machine m(topo::cori(1), 2);
  SimEngine engine(m);
  auto program = [&](Context& ctx) -> sim::Task<> {
    if (ctx.rank() != 0) co_return;
    std::byte buf[8];
    auto pending = ctx.irecv(1, 9, MutView{buf, 8});
    EXPECT_FALSE(pending->complete());
    EXPECT_TRUE(ctx.endpoint().has_pending());

    ctx.endpoint().poison(ErrCode::kErrProcFailed);
    EXPECT_TRUE(pending->complete());
    EXPECT_EQ(pending->error(), ErrCode::kErrProcFailed);

    // The first cause wins; later requests are stillborn with it.
    ctx.endpoint().poison(ErrCode::kErrWatchdog);
    EXPECT_EQ(ctx.endpoint().poison_code(), ErrCode::kErrProcFailed);
    auto later = ctx.isend(1, 1, ConstView{buf, 8});
    EXPECT_TRUE(later->complete());
    EXPECT_EQ(later->error(), ErrCode::kErrProcFailed);
    co_return;
  };
  engine.run(program);
}

}  // namespace
}  // namespace adapt::mpi
