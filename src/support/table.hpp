// Aligned ASCII table emitter used by every figure/table benchmark so that
// bench output looks like the rows the paper reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace adapt {

/// Column-aligned text table. Usage:
///   Table t({"algo", "64KB", "128KB"});
///   t.add_row({"ompi-adapt", "0.42ms", "0.81ms"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with fixed precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  std::size_t rows() const { return rows_.size(); }
  void print(std::ostream& os) const;
  /// Comma-separated dump (for downstream plotting).
  void print_csv(std::ostream& os) const;
  /// One JSON object: {"header": [...], "rows": [[...], ...]} (no trailing
  /// newline — composable inside larger documents, see bench::JsonReport).
  void print_json(std::ostream& os) const;

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adapt
