#include "src/net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/support/error.hpp"

namespace adapt::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kRateEps = 1e-9;

TimeNs duration_of(double bytes, double rate) {
  return static_cast<TimeNs>(std::ceil(bytes / rate));
}
}  // namespace

Fabric::Fabric(sim::Simulator& simulator, SharingPolicy policy)
    : sim_(simulator), policy_(policy) {}

LinkId Fabric::add_link(double capacity_bytes_per_ns) {
  ADAPT_CHECK(capacity_bytes_per_ns > 0.0);
  capacity_.push_back(capacity_bytes_per_ns);
  link_flows_.emplace_back();
  return static_cast<LinkId>(capacity_.size() - 1);
}

double Fabric::link_capacity(LinkId id) const {
  ADAPT_CHECK(id >= 0 && id < static_cast<LinkId>(capacity_.size()));
  return capacity_[static_cast<std::size_t>(id)];
}

int Fabric::allocate_slot() {
  if (!free_slots_.empty()) {
    const int slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  flows_.emplace_back();
  return static_cast<int>(flows_.size() - 1);
}

int Fabric::allocate_pending() {
  if (!pending_free_.empty()) {
    const int slot = pending_free_.back();
    pending_free_.pop_back();
    return slot;
  }
  pending_pool_.emplace_back();
  return static_cast<int>(pending_pool_.size() - 1);
}

void Fabric::transfer(const Route& route, Bytes bytes,
                      sim::EventFn on_complete) {
  ADAPT_CHECK(bytes >= 0);
  ADAPT_CHECK(route.per_flow_cap > 0.0) << "route without a rate cap";
  for (LinkId l : route.links)
    ADAPT_CHECK(l >= 0 && l < static_cast<LinkId>(capacity_.size()));

  // Fast paths that never enter bandwidth sharing.
  if (bytes == 0 || route.links.empty() ||
      policy_ == SharingPolicy::kUncontended) {
    const TimeNs stream =
        bytes > 0 ? duration_of(static_cast<double>(bytes), route.per_flow_cap)
                  : 0;
    if (recorder_ && route.trace) {
      recorder_->transfer_active(route.trace, sim_.now() + route.alpha,
                                 stream);
      recorder_->transfer_end(route.trace, sim_.now() + route.alpha + stream);
      for (LinkId l : route.links)
        recorder_->metrics().link_bytes(l) += bytes;
    }
    sim_.after(route.alpha + stream, std::move(on_complete));
    return;
  }

  if (route.serial_key >= 0) {
    SerialQueue& q = serial_[route.serial_key];
    if (q.busy) {
      // The pair's transmit queue is busy: park in a recycled pool slot and
      // wait for the predecessor; the time spent waiting counts against this
      // message's startup latency.
      const int slot = allocate_pending();
      Pending& p = pending_pool_[static_cast<std::size_t>(slot)];
      p.route = route;  // copy-assign reuses the slot's links capacity
      p.bytes = bytes;
      p.posted_at = sim_.now();
      p.on_complete = std::move(on_complete);
      p.next = -1;
      if (q.tail >= 0) {
        pending_pool_[static_cast<std::size_t>(q.tail)].next = slot;
      } else {
        q.head = slot;
      }
      q.tail = slot;
      return;
    }
    q.busy = true;
  }
  start_flow(route, bytes, route.alpha, std::move(on_complete));
}

void Fabric::transfer_tagged(const Route& route, Bytes bytes,
                             const FaultKey& key,
                             std::function<void(const TransferFate&)> on_complete) {
  if (injector_ == nullptr) {
    transfer(route, bytes,
             [cb = std::move(on_complete)] { cb(TransferFate{}); });
    return;
  }
  const TransferFate fate = injector_->decide(key, route.links, sim_.now());
  Route shifted = route;
  shifted.alpha += fate.delay;
  transfer(shifted, bytes, [cb = std::move(on_complete), fate] { cb(fate); });
}

void Fabric::start_flow(const Route& route, Bytes bytes,
                        TimeNs alpha_remaining, sim::EventFn on_complete) {
  const int slot = allocate_slot();
  Flow& f = flows_[static_cast<std::size_t>(slot)];
  f.links = route.links;
  f.cap = route.per_flow_cap;
  f.remaining = static_cast<double>(bytes);
  f.rate = 0.0;
  f.serial_key = route.serial_key;
  f.trace = route.trace;
  f.bytes_total = bytes;
  f.ideal = duration_of(static_cast<double>(bytes), route.per_flow_cap);
  f.on_complete = std::move(on_complete);
  f.active = false;
  sim_.after(alpha_remaining, [this, slot] { activate(slot); });
}

void Fabric::activate(int flow_index) {
  Flow& f = flows_[static_cast<std::size_t>(flow_index)];
  f.active = true;
  f.settled_at = sim_.now();
  for (LinkId l : f.links)
    link_flows_[static_cast<std::size_t>(l)].push_back(flow_index);
  ++active_count_;
  peak_active_ = std::max<std::uint64_t>(
      peak_active_, static_cast<std::uint64_t>(active_count_));
  if (recorder_) {
    if (f.trace) recorder_->transfer_active(f.trace, sim_.now(), f.ideal);
    for (LinkId l : f.links) {
      recorder_->link_sample(
          l, sim_.now(),
          static_cast<std::int64_t>(
              link_flows_[static_cast<std::size_t>(l)].size()));
    }
  }
  rebalance_component(f.links);
}

void Fabric::finish(int flow_index) {
  Flow& f = flows_[static_cast<std::size_t>(flow_index)];
  ADAPT_CHECK(f.active);
  f.active = false;
  for (LinkId l : f.links) {
    auto& lst = link_flows_[static_cast<std::size_t>(l)];
    lst.erase(std::find(lst.begin(), lst.end(), flow_index));
  }
  --active_count_;
  ++completed_;
  auto cb = std::move(f.on_complete);
  f.on_complete = nullptr;
  const std::int64_t key = f.serial_key;
  f.serial_key = -1;
  // Swap the links into a member scratch instead of moving to a local: the
  // slot is recycled before `cb` runs and may be reused underneath us, but a
  // move would strand the vector's capacity in a dying temporary — the swap
  // keeps capacities circulating between the scratch and the slots, so
  // steady-state flow churn never reallocates.
  finish_links_.swap(f.links);
  f.links.clear();
  const std::vector<LinkId>& links = finish_links_;
  if (recorder_) {
    if (f.trace) recorder_->transfer_end(f.trace, sim_.now());
    for (LinkId l : links) {
      recorder_->metrics().link_bytes(l) += f.bytes_total;
      recorder_->link_sample(
          l, sim_.now(),
          static_cast<std::int64_t>(
              link_flows_[static_cast<std::size_t>(l)].size()));
    }
  }
  f.trace = 0;
  f.bytes_total = 0;
  f.ideal = 0;
  free_slots_.push_back(flow_index);

  // Hand the pair's transmit queue to the next waiting message.
  if (key >= 0) {
    SerialQueue& q = serial_[key];
    if (q.head >= 0) {
      const int slot = q.head;
      Pending& next = pending_pool_[static_cast<std::size_t>(slot)];
      q.head = next.next;
      if (q.head < 0) q.tail = -1;
      const TimeNs waited = sim_.now() - next.posted_at;
      const TimeNs alpha_remaining =
          std::max<TimeNs>(0, next.route.alpha - waited);
      start_flow(next.route, next.bytes, alpha_remaining,
                 std::move(next.on_complete));
      pending_free_.push_back(slot);  // links capacity stays with the slot
    } else {
      q.busy = false;
    }
  }

  rebalance_component(links);
  cb();
}

// Collects the connected component of flows reachable from `seed_links`
// through shared links. Rates in max-min fair sharing can only change within
// this component, so everything else is left untouched — the key to keeping
// per-event cost proportional to local congestion, not cluster size.
void Fabric::collect_component(const std::vector<LinkId>& seed_links,
                               std::vector<int>& flows_out,
                               std::vector<LinkId>& links_out) {
  ++visit_epoch_;
  link_seen_.resize(capacity_.size(), 0);
  flow_seen_.resize(flows_.size(), 0);

  std::vector<LinkId>& link_queue = bfs_queue_;  // member scratch: no alloc
  link_queue.clear();
  for (LinkId l : seed_links) {
    if (link_seen_[static_cast<std::size_t>(l)] != visit_epoch_) {
      link_seen_[static_cast<std::size_t>(l)] = visit_epoch_;
      link_queue.push_back(l);
      links_out.push_back(l);
    }
  }
  for (std::size_t qi = 0; qi < link_queue.size(); ++qi) {
    const LinkId l = link_queue[qi];
    for (int fi : link_flows_[static_cast<std::size_t>(l)]) {
      if (flow_seen_[static_cast<std::size_t>(fi)] == visit_epoch_) continue;
      flow_seen_[static_cast<std::size_t>(fi)] = visit_epoch_;
      flows_out.push_back(fi);
      for (LinkId fl : flows_[static_cast<std::size_t>(fi)].links) {
        if (link_seen_[static_cast<std::size_t>(fl)] != visit_epoch_) {
          link_seen_[static_cast<std::size_t>(fl)] = visit_epoch_;
          link_queue.push_back(fl);
          links_out.push_back(fl);
        }
      }
    }
  }
}

void Fabric::rebalance_component(const std::vector<LinkId>& seed_links) {
  scratch_flows_.clear();
  scratch_links_.clear();
  collect_component(seed_links, scratch_flows_, scratch_links_);
  if (scratch_flows_.empty()) return;

  const std::vector<int>& flows = scratch_flows_;
  const std::vector<LinkId>& links = scratch_links_;
  const std::size_t n = flows.size();

  // Progressive filling restricted to the component. Links outside carry
  // none of these flows by construction.
  residual_.resize(capacity_.size());
  unfixed_on_.resize(capacity_.size());
  for (LinkId l : links) {
    residual_[static_cast<std::size_t>(l)] =
        capacity_[static_cast<std::size_t>(l)];
    unfixed_on_[static_cast<std::size_t>(l)] = static_cast<int>(
        link_flows_[static_cast<std::size_t>(l)].size());
  }

  rates_.assign(n, -1.0);
  std::size_t nfixed = 0;
  while (nfixed < n) {
    double link_share = kInf;
    for (LinkId l : links) {
      const auto lu = static_cast<std::size_t>(l);
      if (unfixed_on_[lu] > 0)
        link_share = std::min(link_share, residual_[lu] / unfixed_on_[lu]);
    }
    double flow_cap = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (rates_[i] < 0.0)
        flow_cap = std::min(flow_cap,
                            flows_[static_cast<std::size_t>(flows[i])].cap);
    }
    const bool cap_binds = flow_cap <= link_share;
    const double level = cap_binds ? flow_cap : link_share;
    ADAPT_CHECK(level > 0.0 && level < kInf);
    const double threshold = level * (1.0 + 1e-12);

    bool fixed_any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (rates_[i] >= 0.0) continue;
      const Flow& f = flows_[static_cast<std::size_t>(flows[i])];
      bool binds;
      if (cap_binds) {
        binds = f.cap <= threshold;
      } else {
        binds = false;
        for (LinkId l : f.links) {
          const auto lu = static_cast<std::size_t>(l);
          if (residual_[lu] / unfixed_on_[lu] <= threshold) {
            binds = true;
            break;
          }
        }
      }
      if (!binds) continue;
      rates_[i] = level;
      ++nfixed;
      fixed_any = true;
      for (LinkId l : f.links) {
        const auto lu = static_cast<std::size_t>(l);
        residual_[lu] = std::max(0.0, residual_[lu] - level);
        --unfixed_on_[lu];
      }
    }
    ADAPT_CHECK(fixed_any) << "progressive filling made no progress";
  }

  // Settle and reschedule only the flows whose rate actually changed.
  const TimeNs now = sim_.now();
  for (std::size_t i = 0; i < n; ++i) {
    const int fi = flows[i];
    Flow& f = flows_[static_cast<std::size_t>(fi)];
    const double new_rate = rates_[i];
    const bool changed =
        std::abs(new_rate - f.rate) > kRateEps * std::max(1.0, f.rate);
    if (!changed && f.completion.valid()) continue;

    f.remaining =
        std::max(0.0, f.remaining - f.rate * static_cast<double>(
                                                 now - f.settled_at));
    f.settled_at = now;
    f.rate = new_rate;
    f.completion.cancel();
    ADAPT_CHECK(f.rate > 0.0) << "active flow starved";
    f.completion =
        sim_.after(duration_of(f.remaining, f.rate), [this, fi] { finish(fi); });
  }
}

}  // namespace adapt::net
