#include "src/obs/query.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>

#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace adapt::obs {

namespace {

TimeNs us_to_ns(const JsonValue& v) {
  return static_cast<TimeNs>(std::llround(v.as_number() * 1000.0));
}

int transfer_kind_code(const std::string& name) {
  if (name == "eager") return 0;
  if (name == "rts") return 1;
  if (name == "cts") return 2;
  if (name == "bulk") return 3;
  if (name == "abort") return 4;
  if (name == "ping") return 5;
  if (name == "fail_notice") return 6;
  if (name == "revoke") return 7;
  if (name == "agree") return 8;
  if (name == "ack") return kXferAck;
  ADAPT_CHECK(false) << "unknown transfer kind " << name;
  return -1;
}

/// A buffered "noise-stall" span waiting to be folded into the "cpu" span
/// the exporter emits right after it (same CpuRec, same track).
struct PendingStall {
  bool live = false;
  int pid = 0;
  int tid = 0;
  TimeNs t0 = 0;
  TimeNs t1 = 0;
};

std::int64_t event_arg(const JsonValue& ev, const char* key) {
  if (!ev.has("args")) return 0;
  const JsonValue& args = ev.at("args");
  return args.has(key) ? args.at(key).as_int() : 0;
}

}  // namespace

std::optional<Cat> cat_from_name(const std::string& name) {
  for (const Cat c : {Cat::kColl, Cat::kTask, Cat::kP2p, Cat::kProto,
                      Cat::kCpu, Cat::kNoise, Cat::kTune, Cat::kCache}) {
    if (name == cat_name(c)) return c;
  }
  return std::nullopt;
}

LoadedTrace load_trace_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  ADAPT_CHECK(doc.has("traceEvents")) << "not a trace export";
  const auto& events = doc.at("traceEvents").as_array();

  LoadedTrace out;
  Recorder& rec = out.recorder;
  PendingStall stall;
  std::map<std::int64_t, std::uint64_t> open_xfers;  // export id -> handle
  TimeNs end = 0;

  auto flush_stall = [&] {
    if (!stall.live) return;
    stall.live = false;
    // A stall with no following run: ready = t0, start = end = t1.
    rec.cpu_task(stall.pid - 1, stall.tid == kTidProgress, stall.t0, stall.t0,
                 stall.t1, stall.t1);
  };

  for (const JsonValue& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") {
      if (ev.at("name").as_string() == "process_name") {
        const int pid = static_cast<int>(ev.at("pid").as_int());
        if (pid != kNetPid) out.nranks = std::max(out.nranks, pid);
      }
      continue;
    }
    if (ph == "X") {
      const int pid = static_cast<int>(ev.at("pid").as_int());
      const int tid = static_cast<int>(ev.at("tid").as_int());
      const std::string& cat_str = ev.at("cat").as_string();
      const TimeNs t0 = us_to_ns(ev.at("ts"));
      const TimeNs t1 = t0 + us_to_ns(ev.at("dur"));
      end = std::max(end, t1);
      if (cat_str == "noise") {
        flush_stall();
        stall = PendingStall{true, pid, tid, t0, t1};
        continue;
      }
      if (cat_str == "cpu") {
        const bool progress = ev.at("name").as_string() == "progress";
        const std::int64_t queued = event_arg(ev, "queued_ns");
        TimeNs t_ready = t0;
        if (stall.live && stall.pid == pid && stall.tid == tid &&
            stall.t1 == t0) {
          t_ready = stall.t0;
          stall.live = false;
        } else {
          flush_stall();
        }
        rec.cpu_task(pid - 1, progress, t_ready - queued, t_ready, t0, t1);
        continue;
      }
      const auto cat = cat_from_name(cat_str);
      ADAPT_CHECK(cat.has_value()) << "unknown span cat " << cat_str;
      rec.span(pid, tid, *cat, ev.at("name").as_string(), t0, t1,
               event_arg(ev, "arg"));
      continue;
    }
    if (ph == "i") {
      const auto cat = cat_from_name(ev.at("cat").as_string());
      ADAPT_CHECK(cat.has_value()) << "unknown instant cat";
      const TimeNs t = us_to_ns(ev.at("ts"));
      end = std::max(end, t);
      rec.instant(static_cast<int>(ev.at("pid").as_int()),
                  static_cast<int>(ev.at("tid").as_int()), *cat,
                  ev.at("name").as_string(), t, event_arg(ev, "arg"));
      continue;
    }
    if (ph == "b") {
      const std::string& name = ev.at("name").as_string();
      const std::size_t sp = name.find(' ');
      const std::size_t arrow = name.find("->", sp);
      ADAPT_CHECK(sp != std::string::npos && arrow != std::string::npos)
          << "bad transfer name " << name;
      const int kind = transfer_kind_code(name.substr(0, sp));
      const Rank src = std::stoi(name.substr(sp + 1, arrow - sp - 1));
      const Rank dst = std::stoi(name.substr(arrow + 2));
      const TimeNs t_post = us_to_ns(ev.at("ts"));
      const std::uint64_t handle = rec.transfer_begin(
          src, dst, event_arg(ev, "bytes"), kind, t_post);
      rec.transfer_active(handle, t_post + event_arg(ev, "alpha_ns"),
                          event_arg(ev, "ideal_ns"));
      if (ev.at("args").at("delivered").is_bool() &&
          !ev.at("args").at("delivered").as_bool()) {
        rec.transfer_undelivered(handle);
      }
      open_xfers[ev.at("id").as_int()] = handle;
      continue;
    }
    if (ph == "e") {
      const auto it = open_xfers.find(ev.at("id").as_int());
      ADAPT_CHECK(it != open_xfers.end()) << "transfer end without begin";
      const TimeNs t_end = us_to_ns(ev.at("ts"));
      end = std::max(end, t_end);
      rec.transfer_end(it->second, t_end);
      open_xfers.erase(it);
      continue;
    }
    if (ph == "C") {
      const std::string& name = ev.at("name").as_string();
      ADAPT_CHECK(name.rfind("link", 0) == 0) << "unknown counter " << name;
      const int link = std::stoi(name.substr(4));
      const TimeNs t = us_to_ns(ev.at("ts"));
      end = std::max(end, t);
      rec.link_sample(link, t, event_arg(ev, "flows"));
      continue;
    }
    ADAPT_CHECK(false) << "unknown trace phase " << ph;
  }
  flush_stall();
  if (out.nranks > 0) rec.init_ranks(out.nranks);
  out.end_time = end;
  return out;
}

LoadedTrace load_trace_file(const std::string& path) {
  std::ifstream is(path);
  ADAPT_CHECK(static_cast<bool>(is)) << "cannot open trace " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return load_trace_json(ss.str());
}

// -- summarize -------------------------------------------------------------

Summary summarize(const LoadedTrace& trace) {
  const Recorder& rec = trace.recorder;
  Summary s;
  s.end_time = trace.end_time;
  s.nranks = trace.nranks;
  s.events = rec.event_count();

  // Collective groups: every kColl span, keyed by name.
  std::map<std::string, std::vector<const SpanRec*>> groups;
  for (const SpanRec& sp : rec.spans()) {
    if (sp.cat == Cat::kColl) groups[sp.name].push_back(&sp);
  }
  for (const auto& [name, spans] : groups) {
    CollStats cs;
    cs.name = name;
    cs.count = static_cast<int>(spans.size());
    std::vector<TimeNs> durs;
    durs.reserve(spans.size());
    for (const SpanRec* sp : spans) {
      durs.push_back(sp->t1 - sp->t0);
      if (sp->t1 > cs.end) {
        cs.end = sp->t1;
        cs.slowest = sp->pid - 1;
      }
    }
    std::sort(durs.begin(), durs.end());
    const std::size_t n = durs.size();
    cs.p50 = durs[(n - 1) * 50 / 100];
    cs.p90 = durs[(n - 1) * 90 / 100];
    cs.p99 = durs[(n - 1) * 99 / 100];
    cs.max = durs[n - 1];
    cs.attr = critical_path(rec, cs.slowest, cs.end);
    s.collectives.push_back(std::move(cs));
  }

  // Per-link utilization from flow-count samples (appended in time order).
  std::map<int, LinkStats> links;
  std::map<int, std::pair<TimeNs, std::int64_t>> link_state;  // t, flows
  for (const LinkSampleRec& ls : rec.link_samples()) {
    LinkStats& st = links[ls.link];
    st.link = ls.link;
    auto& [t_prev, flows_prev] = link_state[ls.link];
    if (flows_prev > 0) st.busy += ls.t - t_prev;
    st.peak = std::max(st.peak, ls.flows);
    t_prev = ls.t;
    flows_prev = ls.flows;
  }
  for (auto& [link, st] : links) {
    const auto& [t_prev, flows_prev] = link_state[link];
    if (flows_prev > 0) st.busy += s.end_time - t_prev;
    s.links.push_back(st);
  }

  // Tuner decisions: "tune <winner>" predictions paired with
  // "tuned <winner>" simulated times, grouped by winner.
  std::map<std::string, TuneStats> tuner;
  std::map<std::string, std::int64_t> instant_counts;
  for (const InstantRec& in : rec.instants()) {
    instant_counts[std::string(cat_name(in.cat)) + "/" + in.name] += 1;
    if (in.cat != Cat::kTune) continue;
    if (in.name.rfind("tune ", 0) == 0) {
      TuneStats& ts = tuner[in.name.substr(5)];
      ts.decisions += 1;
      ts.predicted_ns += in.arg;
    } else if (in.name.rfind("tuned ", 0) == 0) {
      TuneStats& ts = tuner[in.name.substr(6)];
      ts.measured += 1;
      ts.actual_ns += in.arg;
    }
  }
  for (auto& [winner, ts] : tuner) {
    ts.winner = winner;
    s.tuner.push_back(std::move(ts));
  }
  for (const auto& [label, count] : instant_counts) {
    s.instant_counts.emplace_back(label, count);
  }
  return s;
}

namespace {

void print_attr(const Attribution& a, std::ostream& os) {
  os << "alpha " << a.alpha << " beta " << a.beta << " compute " << a.compute
     << " contention " << a.contention << " noise " << a.noise << " other "
     << a.other << " (end " << a.end << " @ rank " << a.end_rank << ", "
     << a.hops << " hops)";
}

double pct(std::int64_t part, std::int64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) /
                                static_cast<double>(whole);
}

}  // namespace

void print_summary(const Summary& s, std::ostream& os) {
  os << "trace: end " << s.end_time << " ns, " << s.nranks << " ranks, "
     << s.events << " events\n";
  os << "\ncollectives:\n";
  for (const CollStats& cs : s.collectives) {
    os << "  " << cs.name << ": " << cs.count << " spans, p50 " << cs.p50
       << " p90 " << cs.p90 << " p99 " << cs.p99 << " max " << cs.max
       << " ns, slowest rank " << cs.slowest << ", end " << cs.end << " ns\n";
    os << "    critical path: ";
    print_attr(cs.attr, os);
    os << "\n";
  }
  if (!s.links.empty()) {
    os << "\nlinks:\n";
    for (const LinkStats& ls : s.links) {
      os.precision(1);
      os << "  link " << ls.link << ": busy " << ls.busy << " ns ("
         << std::fixed << pct(ls.busy, s.end_time) << "%), peak " << ls.peak
         << " flows\n";
      os.unsetf(std::ios::fixed);
    }
  }
  if (!s.tuner.empty()) {
    os << "\ntuner decisions:\n";
    for (const TuneStats& ts : s.tuner) {
      os << "  " << ts.winner << ": " << ts.decisions << " decisions";
      if (ts.decisions > 0) {
        os << ", predicted " << ts.predicted_ns / ts.decisions << " ns avg";
      }
      if (ts.measured > 0) {
        const std::int64_t actual = ts.actual_ns / ts.measured;
        os << ", simulated " << actual << " ns avg";
        if (ts.decisions > 0 && actual > 0) {
          os.precision(1);
          os << " (model err " << std::fixed
             << pct(ts.predicted_ns / ts.decisions - actual, actual) << "%)";
          os.unsetf(std::ios::fixed);
        }
      }
      os << "\n";
    }
  }
  if (!s.instant_counts.empty()) {
    os << "\ninstants:\n";
    for (const auto& [label, count] : s.instant_counts) {
      os << "  " << label << ": " << count << "\n";
    }
  }
}

// -- query -----------------------------------------------------------------

std::vector<QueryHit> query_events(const LoadedTrace& trace,
                                   const EventFilter& f, int limit) {
  std::vector<QueryHit> hits;
  const auto match = [&](int pid, Cat cat, const std::string& name, TimeNs t0,
                         TimeNs t1) {
    if (f.rank >= 0 && pid != rank_pid(f.rank)) return false;
    if (f.cat.has_value() && cat != *f.cat) return false;
    if (!f.name.empty() && name.find(f.name) == std::string::npos)
      return false;
    return t1 >= f.from && t0 <= f.to;
  };
  for (const SpanRec& sp : trace.recorder.spans()) {
    if (match(sp.pid, sp.cat, sp.name, sp.t0, sp.t1)) {
      hits.push_back(QueryHit{true, sp});
    }
  }
  for (const InstantRec& in : trace.recorder.instants()) {
    if (match(in.pid, in.cat, in.name, in.t, in.t)) {
      hits.push_back(QueryHit{
          false, SpanRec{in.pid, in.tid, in.cat, in.name, in.t, in.t,
                         in.arg}});
    }
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const QueryHit& a, const QueryHit& b) {
                     return std::tie(a.rec.t0, a.rec.pid, a.rec.tid,
                                     a.rec.name) <
                            std::tie(b.rec.t0, b.rec.pid, b.rec.tid,
                                     b.rec.name);
                   });
  if (limit > 0 && hits.size() > static_cast<std::size_t>(limit)) {
    hits.resize(static_cast<std::size_t>(limit));
  }
  return hits;
}

void print_query(const std::vector<QueryHit>& hits, std::ostream& os) {
  for (const QueryHit& h : hits) {
    const SpanRec& r = h.rec;
    os << r.t0 << " ns ";
    if (r.pid == kNetPid) {
      os << "net";
    } else {
      os << "rank " << (r.pid - 1) << (r.tid == kTidProgress ? "/prog" : "");
    }
    os << " [" << cat_name(r.cat) << "] " << r.name;
    if (h.is_span) {
      os << " dur " << (r.t1 - r.t0) << " ns";
    }
    if (r.arg != 0) os << " arg " << r.arg;
    os << "\n";
  }
  os << hits.size() << " events\n";
}

// -- diff ------------------------------------------------------------------

namespace {

void add_attr(Attribution& acc, const Attribution& a) {
  acc.alpha += a.alpha;
  acc.beta += a.beta;
  acc.compute += a.compute;
  acc.contention += a.contention;
  acc.noise += a.noise;
  acc.other += a.other;
  acc.end += a.end;
  acc.hops += a.hops;
}

}  // namespace

DiffReport diff_traces(const LoadedTrace& a, const LoadedTrace& b, int top) {
  DiffReport r;
  r.end_a = a.end_time;
  r.end_b = b.end_time;

  const Summary sa = summarize(a);
  const Summary sb = summarize(b);
  std::map<std::string, const CollStats*> ca, cb;
  for (const CollStats& cs : sa.collectives) ca[cs.name] = &cs;
  for (const CollStats& cs : sb.collectives) cb[cs.name] = &cs;
  std::map<std::string, CollDelta> colls;
  for (const auto& [name, cs] : ca) {
    CollDelta& d = colls[name];
    d.name = name;
    d.in_a = true;
    d.end_a = cs->end;
    d.attr_a = cs->attr;
  }
  for (const auto& [name, cs] : cb) {
    CollDelta& d = colls[name];
    d.name = name;
    d.in_b = true;
    d.end_b = cs->end;
    d.attr_b = cs->attr;
  }
  for (const auto& [name, d] : colls) {
    if (d.in_a && d.in_b) {
      add_attr(r.rollup_a, d.attr_a);
      add_attr(r.rollup_b, d.attr_b);
    }
    r.collectives.push_back(d);
  }

  // Span alignment: n-th span with the same (pid, tid, cat, name).
  using SpanKey = std::tuple<int, int, int, std::string>;
  std::map<SpanKey, std::vector<TimeNs>> da, db;
  for (const SpanRec& sp : a.recorder.spans()) {
    da[SpanKey{sp.pid, sp.tid, static_cast<int>(sp.cat), sp.name}].push_back(
        sp.t1 - sp.t0);
  }
  for (const SpanRec& sp : b.recorder.spans()) {
    db[SpanKey{sp.pid, sp.tid, static_cast<int>(sp.cat), sp.name}].push_back(
        sp.t1 - sp.t0);
  }
  std::vector<SpanDelta> deltas;
  for (const auto& [key, durs_a] : da) {
    const auto it = db.find(key);
    const std::size_t nb = it == db.end() ? 0 : it->second.size();
    const std::size_t m = std::min(durs_a.size(), nb);
    r.matched_spans += static_cast<int>(m);
    r.only_a += static_cast<int>(durs_a.size() - m);
    for (std::size_t i = 0; i < m; ++i) {
      if (durs_a[i] == it->second[i]) continue;
      deltas.push_back(SpanDelta{std::get<0>(key), std::get<3>(key),
                                 static_cast<int>(i), durs_a[i],
                                 it->second[i]});
    }
  }
  for (const auto& [key, durs_b] : db) {
    const auto it = da.find(key);
    const std::size_t na = it == da.end() ? 0 : it->second.size();
    if (durs_b.size() > na) r.only_b += static_cast<int>(durs_b.size() - na);
  }
  std::stable_sort(deltas.begin(), deltas.end(),
                   [](const SpanDelta& x, const SpanDelta& y) {
                     const TimeNs dx = std::abs(x.dur_b - x.dur_a);
                     const TimeNs dy = std::abs(y.dur_b - y.dur_a);
                     if (dx != dy) return dx > dy;
                     return std::tie(x.pid, x.name, x.occurrence) <
                            std::tie(y.pid, y.name, y.occurrence);
                   });
  if (top > 0 && deltas.size() > static_cast<std::size_t>(top)) {
    deltas.resize(static_cast<std::size_t>(top));
  }
  r.top_spans = std::move(deltas);
  return r;
}

void print_diff(const DiffReport& r, std::ostream& os) {
  os << "run A: end " << r.end_a << " ns\n";
  os << "run B: end " << r.end_b << " ns\n";
  os.precision(1);
  os << "delta: " << (r.end_b - r.end_a) << " ns (" << std::fixed
     << pct(r.end_b - r.end_a, r.end_a) << "%)\n";
  os.unsetf(std::ios::fixed);

  const TimeNs d_end = r.rollup_b.end - r.rollup_a.end;
  os << "\nattribution rollup over matched collectives (delta end " << d_end
     << " ns):\n";
  struct Term {
    const char* name;
    TimeNs Attribution::*field;
  };
  const Term terms[] = {
      {"alpha", &Attribution::alpha},     {"beta", &Attribution::beta},
      {"compute", &Attribution::compute}, {"contention",
                                           &Attribution::contention},
      {"noise", &Attribution::noise},     {"other", &Attribution::other},
  };
  for (const Term& term : terms) {
    const TimeNs va = r.rollup_a.*(term.field);
    const TimeNs vb = r.rollup_b.*(term.field);
    os.precision(1);
    os << "  " << term.name << ": " << va << " -> " << vb << " ns, delta "
       << (vb - va) << " (" << std::fixed << pct(vb - va, d_end)
       << "% of delta)\n";
    os.unsetf(std::ios::fixed);
  }

  os << "\ncollectives:\n";
  for (const CollDelta& d : r.collectives) {
    os << "  " << d.name << ": ";
    if (!d.in_a) {
      os << "only in B (end " << d.end_b << " ns)\n";
      continue;
    }
    if (!d.in_b) {
      os << "only in A (end " << d.end_a << " ns)\n";
      continue;
    }
    os.precision(1);
    os << "end " << d.end_a << " -> " << d.end_b << " ns (" << std::fixed
       << pct(d.end_b - d.end_a, d.end_a) << "%)\n";
    os.unsetf(std::ios::fixed);
  }

  os << "\nspans: " << r.matched_spans << " matched, " << r.only_a
     << " only in A, " << r.only_b << " only in B\n";
  if (!r.top_spans.empty()) {
    os << "top changed spans:\n";
    for (const SpanDelta& d : r.top_spans) {
      os << "  ";
      if (d.pid == kNetPid) {
        os << "net";
      } else {
        os << "rank " << (d.pid - 1);
      }
      os << " " << d.name << " #" << d.occurrence << ": " << d.dur_a
         << " -> " << d.dur_b << " ns (" << (d.dur_b - d.dur_a) << ")\n";
    }
  }
}

}  // namespace adapt::obs
