# Empty compiler generated dependencies file for adapt_invariants_test.
# This may be replaced when dependencies are built.
