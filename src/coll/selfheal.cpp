#include "src/coll/selfheal.hpp"

#include <cstring>
#include <vector>

#include "src/coll/detail.hpp"
#include "src/runtime/recovery.hpp"
#include "src/tune/tuner.hpp"

namespace adapt::coll {

namespace {

/// Heartbeat interest for the duration of the wrapper: while any rank holds
/// it, the ring-ping detector runs, so even a rank nobody sends to (a dead
/// bcast root) is eventually suspected.
struct HeartbeatGuard {
  runtime::Recovery* rec;
  explicit HeartbeatGuard(runtime::Recovery* r) : rec(r) {
    if (rec) rec->acquire_heartbeats();
  }
  HeartbeatGuard(const HeartbeatGuard&) = delete;
  HeartbeatGuard& operator=(const HeartbeatGuard&) = delete;
  ~HeartbeatGuard() {
    if (rec) rec->release_heartbeats();
  }
};

void recover_instant(runtime::Context& ctx, const char* what,
                     std::int64_t arg) {
  if (obs::Recorder* rec = ctx.recorder()) {
    rec->instant(obs::rank_pid(ctx.rank()), obs::kTidProgress,
                 obs::Cat::kProto, what, rec->now(), arg);
  }
}

/// RAII recovery-timeline span on this rank's MAIN track (attempt and
/// backoff windows). Coroutine-frame scoped like CollSpan: closes on normal
/// exit, co_return, and unwinding alike. Free without a recorder.
class RecoverSpan {
 public:
  RecoverSpan(runtime::Context& ctx, const char* name, std::int64_t arg)
      : rec_(ctx.recorder()), name_(name), arg_(arg) {
    if (rec_ == nullptr) return;
    pid_ = obs::rank_pid(ctx.rank());
    t0_ = rec_->now();
  }
  RecoverSpan(const RecoverSpan&) = delete;
  RecoverSpan& operator=(const RecoverSpan&) = delete;
  ~RecoverSpan() {
    if (rec_ != nullptr) {
      rec_->span(pid_, obs::kTidMain, obs::Cat::kProto, name_, t0_,
                 rec_->now(), arg_);
    }
  }

 private:
  obs::Recorder* rec_;
  int pid_ = 0;
  const char* name_;
  TimeNs t0_ = 0;
  std::int64_t arg_;
};

/// Pre-attempt snapshot of the caller's buffer, restored before every retry
/// so re-issued attempts are byte-exact replays (synthetic buffers have no
/// bytes to save).
class BufferSnapshot {
 public:
  explicit BufferSnapshot(mpi::MutView buffer) : buffer_(buffer) {
    if (!buffer_.synthetic() && buffer_.size > 0) {
      saved_.assign(buffer_.data, buffer_.data + buffer_.size);
    }
  }
  void restore() const {
    if (!saved_.empty()) {
      std::memcpy(buffer_.data, saved_.data(),
                  static_cast<std::size_t>(buffer_.size));
    }
  }

 private:
  mpi::MutView buffer_;
  std::vector<std::byte> saved_;
};

/// The retry loop shared by the resilient personalities. `issue(cur)` runs
/// one attempt of the collective on communicator `cur` and throws FaultError
/// on local failure; `root` is the global data-source rank for bcast (-1 for
/// rootless semantics, where any survivor set can finish).
template <typename Issue>
sim::Task<ResilientResult> run_resilient(runtime::Context& ctx,
                                         const mpi::Comm& comm, Rank root,
                                         const BufferSnapshot& snapshot,
                                         const ResilientOpts& opts,
                                         Issue issue) {
  runtime::Recovery* rec = ctx.recovery();
  ResilientResult res;
  res.comm = comm;
  const int max_attempts =
      opts.max_attempts > 0 ? opts.max_attempts
                            : (rec ? rec->options().max_attempts : 1);
  const double backoff =
      opts.backoff > 0 ? opts.backoff : (rec ? rec->options().backoff : 2.0);
  TimeNs delay = opts.backoff_base > 0
                     ? opts.backoff_base
                     : (rec ? rec->options().backoff_base : microseconds(200));
  HeartbeatGuard hb(rec);
  mpi::Comm cur = comm;
  for (int attempt = 1;; ++attempt) {
    res.attempts = attempt;
    RecoverSpan attempt_span(ctx, "recover_attempt", attempt);
    // Re-arm the endpoint: a failure notice may have poisoned it to unblock
    // the previous attempt (or while we idled). Watchdog poison is terminal
    // and stays.
    if (rec) rec->clear_poison();
    if (attempt > 1) snapshot.restore();
    mpi::ErrCode local = mpi::ErrCode::kOk;
    bool issued = true;
    if (rec && attempt > 1) {
      // Ready barrier before re-issuing: a fast survivor's data frames must
      // not reach a peer that has not cleared its poison yet — the channel
      // acks the frame and the poisoned endpoint drops it, so the bytes are
      // gone with no retransmit coming. Agreement frames bypass the endpoint,
      // and a rank only contributes after clear_poison above, so once this
      // round decides every member is re-armed.
      recover_instant(ctx, "recover_sync", attempt);
      const mpi::AgreeResult ready = co_await mpi::comm_agree(ctx, cur, 1u);
      if (ready.excluded) {
        res.code = mpi::ErrCode::kErrProcFailed;
        res.failed |= ready.failed;
        co_return res;
      }
      res.failed |= ready.failed;
      if (ready.failed != 0) {
        // A member died between the previous fate agreement and now. Skip
        // the issue (its schedule would just fail) and fall through to the
        // shared shrink/backoff path with a failed-attempt verdict; the next
        // iteration re-syncs on the shrunk membership.
        issued = false;
        local = mpi::ErrCode::kErrProcFailed;
      }
    }
    if (issued) {
      try {
        co_await issue(cur);
      } catch (const mpi::FaultError& e) {
        local = e.code();
      }
    }
    if (!rec) {
      // No recovery service: single shot, PR 2 semantics as a code.
      res.code = local;
      co_return res;
    }
    // Agree on the attempt's fate: AND of "I completed" bits, OR of failure
    // views. The agreement itself survives participant death.
    recover_instant(ctx, "recover_agree", attempt);
    const mpi::AgreeResult agree = co_await mpi::comm_agree(
        ctx, cur, local == mpi::ErrCode::kOk ? 1u : 0u);
    if (agree.excluded) {
      // The survivors declared *us* failed; they will shrink us away.
      res.code = mpi::ErrCode::kErrProcFailed;
      res.failed |= agree.failed;
      co_return res;
    }
    res.failed |= agree.failed;
    if (agree.flags & 1u) {
      // Every live participant completed this attempt — the buffer holds the
      // failure-free result over `cur`. Clear any poison a post-completion
      // notice left behind before handing the endpoint back.
      rec->clear_poison();
      res.code = mpi::ErrCode::kOk;
      res.comm = cur;
      co_return res;
    }
    // Failed attempt: retire the stale topology and drop to the survivors.
    if (agree.failed != 0) {
      mpi::comm_revoke(ctx, cur);
      cur = mpi::comm_shrink(cur, agree.failed);
    }
    res.comm = cur;
    if (root >= 0 && !cur.contains(root)) {
      // The data source died: unrecoverable, uniformly reported (every
      // survivor derives this from the same agreed failure set).
      res.code = mpi::ErrCode::kErrProcFailed;
      co_return res;
    }
    if (attempt >= max_attempts) {
      res.code = mpi::ErrCode::kErrProcFailed;
      co_return res;
    }
    recover_instant(ctx, "recover_retry", attempt + 1);
    {
      RecoverSpan backoff_span(ctx, "recover_backoff", delay);
      co_await ctx.sleep_for(delay);
    }
    delay = static_cast<TimeNs>(static_cast<double>(delay) * backoff);
  }
}

}  // namespace

sim::Task<ResilientResult> resilient_bcast(runtime::Context& ctx,
                                           const mpi::Comm& comm,
                                           mpi::MutView buffer, Rank root,
                                           const ResilientOpts& opts) {
  ADAPT_CHECK(comm.contains(root)) << "bcast root not in the communicator";
  ADAPT_CHECK(comm.contains(ctx.rank()));
  detail::CollSpan span(ctx, "resilient_bcast", "adapt", buffer.size);
  const BufferSnapshot snapshot(buffer);
  co_return co_await run_resilient(
      ctx, comm, root, snapshot, opts,
      [&ctx, buffer, root, &opts](const mpi::Comm& cur) -> sim::Task<> {
        // Fresh schedule on the (possibly shrunk) membership: the paper's
        // topology-aware default over the survivors.
        const Rank root_local = cur.local_of(root);
        const Tree tree = tune::decision_tree(ctx.machine(), cur, root_local,
                                              tune::Decision{});
        co_await bcast(ctx, cur, buffer, root_local, tree, opts.style,
                       opts.coll);
      });
}

sim::Task<ResilientResult> resilient_allreduce(runtime::Context& ctx,
                                               const mpi::Comm& comm,
                                               mpi::MutView accum,
                                               mpi::ReduceOp op,
                                               mpi::Datatype dtype,
                                               const ResilientOpts& opts) {
  ADAPT_CHECK(comm.contains(ctx.rank()));
  detail::CollSpan span(ctx, "resilient_allreduce", "adapt", accum.size);
  const BufferSnapshot snapshot(accum);
  co_return co_await run_resilient(
      ctx, comm, /*root=*/-1, snapshot, opts,
      [&ctx, accum, op, dtype, &opts](const mpi::Comm& cur) -> sim::Task<> {
        // Reduce to the lowest survivor, then broadcast back on one tree —
        // the same composition the persistent allreduce uses.
        const Tree tree =
            tune::decision_tree(ctx.machine(), cur, 0, tune::Decision{});
        co_await reduce(ctx, cur, accum, op, dtype, 0, tree, opts.style,
                        opts.coll);
        co_await bcast(ctx, cur, accum, 0, tree, opts.style, opts.coll);
      });
}

}  // namespace adapt::coll
