#include "src/mpi/endpoint.hpp"

#include <cstring>

#include "src/obs/trace.hpp"
#include "src/support/error.hpp"

namespace adapt::mpi {

namespace {

/// MPI-style argument validation shared by isend/irecv. `wildcard_ok` admits
/// kAnyRank as a peer (receives only).
ErrCode validate(Rank peer, bool wildcard_ok, Rank self, int nranks,
                 Bytes count, Datatype dtype) {
  const bool wildcard = peer == kAnyRank && wildcard_ok;
  if (!wildcard) {
    if (peer < 0 || (nranks > 0 && peer >= nranks)) return ErrCode::kErrRank;
    if (peer == self) return ErrCode::kErrRank;  // self-send unsupported
  }
  if (count < 0) return ErrCode::kErrCount;
  if (count % size_of(dtype) != 0) return ErrCode::kErrType;
  return ErrCode::kOk;
}

}  // namespace

RequestPtr Endpoint::make_request(Request::Kind kind, Rank peer, Tag tag,
                                  Bytes size) {
  return std::allocate_shared<Request>(
      support::ArenaAllocator<Request>(arena_), kind, peer, tag, size, &exec_);
}

RequestPtr Endpoint::failed_request(Request::Kind kind, Rank peer, Tag tag,
                                    ErrCode code) {
  auto req = make_request(kind, peer, tag, 0);
  req->mark_failed(code);
  return req;
}

std::uint32_t Endpoint::acquire_send_slot(RequestPtr request) {
  if (send_free_.empty()) {
    send_slots_.push_back(std::move(request));
    return static_cast<std::uint32_t>(send_slots_.size() - 1);
  }
  const std::uint32_t slot = send_free_.back();
  send_free_.pop_back();
  send_slots_[slot] = std::move(request);
  return slot;
}

void Endpoint::finish_send(std::uint32_t slot, ErrCode code) {
  RequestPtr req = std::move(send_slots_[slot]);
  send_free_.push_back(slot);
  if (code == ErrCode::kOk) {
    req->mark_complete();
  } else {
    req->mark_failed(code);
  }
}

std::uint32_t Endpoint::acquire_finalize_slot(PostedRecv recv, Envelope env) {
  std::uint32_t slot;
  if (finalize_free_.empty()) {
    finalize_slots_.emplace_back();
    slot = static_cast<std::uint32_t>(finalize_slots_.size() - 1);
  } else {
    slot = finalize_free_.back();
    finalize_free_.pop_back();
  }
  finalize_slots_[slot] = {std::move(recv), std::move(env)};
  return slot;
}

void Endpoint::run_finalize_slot(std::uint32_t slot) {
  PendingFinalize pf = std::move(finalize_slots_[slot]);
  finalize_slots_[slot] = {};  // drop payload refs before recycling the slot
  finalize_free_.push_back(slot);
  finalize_recv(pf.recv, pf.env);
}

void Endpoint::track(const RequestPtr& request) {
  if (pending_.size() >= 64 && pending_.size() % 64 == 0) {
    std::erase_if(pending_, [](const std::weak_ptr<Request>& weak) {
      auto req = weak.lock();
      return !req || req->complete();
    });
  }
  pending_.push_back(request);
}

void Endpoint::poison(ErrCode code) {
  ADAPT_CHECK(code != ErrCode::kOk);
  if (poisoned()) return;  // first cause wins
  poisoned_ = code;
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& weak : pending) {
    if (auto req = weak.lock(); req && !req->complete()) req->mark_failed(code);
  }
}

bool Endpoint::has_pending() const {
  for (const auto& weak : pending_) {
    if (auto req = weak.lock(); req && !req->complete()) return true;
  }
  return false;
}

RequestPtr Endpoint::isend(Rank dst, Tag tag, ConstView data, SendOpts opts) {
  if (poisoned())
    return failed_request(Request::Kind::kSend, dst, tag, poisoned_);
  if (const ErrCode code = validate(dst, /*wildcard_ok=*/false, rank_,
                                    nranks_, data.size, opts.dtype);
      code != ErrCode::kOk) {
    return failed_request(Request::Kind::kSend, dst, tag, code);
  }
  auto req = make_request(Request::Kind::kSend, dst, tag, data.size);
  ++sends_;
  if (rec_) {
    auto& rc = rec_->metrics().rank(rank_);
    ++rc.sends;
    rc.send_bytes += data.size;
  }
  exec_.charge(costs_.cpu_overhead);
  track(req);

  Envelope env;
  env.src = rank_;
  env.dst = dst;
  env.tag = tag;
  env.size = data.size;
  if (!data.synthetic() && data.size > 0) {
    // The payload is captured at post time, so the sender's buffer is
    // immediately reusable (for rendezvous the transport keeps this copy
    // until the grant; semantically equivalent, since the request only
    // completes at transfer end).
    env.data = pool_ ? pool_->acquire_raw(data.size)
                     : support::BufferRef::heap_raw(data.size);
    std::memcpy(env.data.data(), data.data,
                static_cast<std::size_t>(data.size));
  }
  // Park the request in a recycled slot: both transport callbacks capture
  // {this, slot} (std::function inline storage, no boxing) and exactly one
  // of them fires, releasing the slot's ownership.
  const std::uint32_t slot = acquire_send_slot(req);
  transport_.submit(std::move(env), opts.src_space, opts.dst_space,
                    [this, slot] { finish_send(slot, ErrCode::kOk); },
                    [this, slot](ErrCode code) { finish_send(slot, code); });
  return req;
}

RequestPtr Endpoint::irecv(Rank src, Tag tag, MutView buffer, Datatype dtype) {
  if (poisoned())
    return failed_request(Request::Kind::kRecv, src, tag, poisoned_);
  if (const ErrCode code = validate(src, /*wildcard_ok=*/true, rank_, nranks_,
                                    buffer.size, dtype);
      code != ErrCode::kOk) {
    return failed_request(Request::Kind::kRecv, src, tag, code);
  }
  auto req = make_request(Request::Kind::kRecv, src, tag, buffer.size);
  exec_.charge(costs_.cpu_overhead);
  track(req);

  PostedRecv posted{req, buffer, src, tag};
  if (auto env = matcher_.post(posted)) {
    if (rec_) {
      ++rec_->metrics().counter("unexpected_hits");
      rec_->instant(obs::rank_pid(rank_), obs::kTidProgress, obs::Cat::kP2p,
                    "unexpected_hit", rec_->now(), env->size);
    }
    if (env->rendezvous()) {
      // Late software match of a queued RTS: hand the receive back to the
      // transport, which runs CTS + data. No extra copy — rendezvous's point.
      env->grant(posted);
    } else {
      // Eager unexpected hit: the data already sits in a temporary buffer;
      // pay the allocation/copy penalty before completing (paper §2.2.1 —
      // the cost ADAPT's M > N rule exists to avoid).
      const TimeNs copy_cost =
          costs_.unexpected_overhead +
          static_cast<TimeNs>(costs_.memcpy_beta *
                              static_cast<double>(env->size));
      const std::uint32_t slot =
          acquire_finalize_slot(posted, std::move(*env));
      exec_.post_progress([this, slot] { run_finalize_slot(slot); },
                          copy_cost);
    }
  } else if (rec_) {
    rec_->metrics()
        .histogram("posted_queue_depth")
        .record(static_cast<std::int64_t>(matcher_.posted_count()));
  }
  return req;
}

void Endpoint::deliver(Envelope env) {
  // A poisoned endpoint has abandoned its operation: late arrivals (straggler
  // frames, retransmits that raced the abort) are dropped on the floor.
  if (poisoned()) return;
  // Runs at arrival time WITHOUT the receiver's CPU: matching against
  // pre-posted receives is NIC-offloaded (Aries/Portals-style). Anything that
  // does need the CPU (completion callbacks, unexpected copies, software
  // rendezvous matches) is deferred through the executor by the paths below.
  // arrive() moves from env only on the unexpected (miss) path; on a hit it
  // is untouched, so the rendezvous/finalise uses below stay valid.
  if (auto recv = matcher_.arrive(std::move(env))) {
    if (env.rendezvous()) {
      env.grant(*recv);
    } else {
      const std::uint32_t slot =
          acquire_finalize_slot(std::move(*recv), std::move(env));
      exec_.post_progress([this, slot] { run_finalize_slot(slot); },
                          costs_.cpu_overhead);
    }
  } else if (rec_) {
    // Queued as unexpected (an eager payload or an RTS); a later irecv picks
    // it up. Sample the queue's depth at its high-water moments.
    rec_->metrics()
        .histogram("unexpected_queue_depth")
        .record(static_cast<std::int64_t>(matcher_.unexpected_count()));
  }
}

void Endpoint::finalize_recv(const PostedRecv& recv, const Envelope& env) {
  // The receive may have failed (poison) while this finalisation was queued:
  // completion is final, so neither copy into the buffer nor complete again.
  if (recv.request->complete()) return;
  ADAPT_CHECK(env.size <= recv.buffer.size)
      << "message of " << env.size << "B overflows a " << recv.buffer.size
      << "B receive buffer (src=" << env.src << " tag=" << env.tag << ")";
  if (env.data && !recv.buffer.synthetic()) {
    std::memcpy(recv.buffer.data, env.data.data(),
                static_cast<std::size_t>(env.size));
  }
  ++recvs_done_;
  if (rec_) {
    auto& rc = rec_->metrics().rank(rank_);
    ++rc.recvs;
    rc.recv_bytes += env.size;
  }
  recv.request->mark_complete(env.src, env.tag, env.size);
}

}  // namespace adapt::mpi
