// adaptsim: general-purpose driver for one-off experiments.
//
// Pick a cluster (preset or custom spec), an MPI library personality, an
// operation, a message-size range and a noise level, and get the measured
// times — everything the figure benches do, but à la carte.
//
//   ./adaptsim --cluster cori --nodes 8 --ranks 256 --lib ompi-adapt
//              --op bcast --min 65536 --max 4194304 --noise 5 --iters 4
//   (single command line; wrapped here for readability)
//   ./adaptsim --spec "nodes=4,sockets=2,cores=8,bw_node=10" --lib cray ...
//   ./adaptsim --machine nodes=16,ppn=8 --lib ompi-han --op bcast
//   (--machine is an alias for --spec; ppn= builds flat nodes with the
//   first-class SHM channel enabled, the natural shape for two-level HAN)
//
// Observability: --trace=FILE writes a Chrome/Perfetto trace of the final
// message size's run (load at ui.perfetto.dev); --metrics=FILE writes the
// counter/histogram registry as CSV.
//
// Tuning: --tuning switches tunable personalities (ompi-adapt) from their
// built-in heuristics to the src/tune decision engine; --dump-table=FILE
// writes the decision table filled during the run as JSON.
//
// Persistent collectives: --persistent measures the MPI-4-style
// init/start/wait path instead of one-shot calls — each rank builds its
// handle once per message size (planning, tree, tuner decision all happen
// there, cached engine-wide in the plan cache) and every timed iteration
// just replays it.
//
// Scale: --shards=N runs the sweep on the sharded conservative-lookahead
// engine (N worker threads over a partitioned event core) instead of the
// SimEngine. Results, traces, and metrics are byte-identical for any N —
// only wall clock changes. Incompatible with --persistent, --recover, and
// GPU personalities (those need SimEngine-only services). See DESIGN.md §14.
//
// Recovery: --recover runs the self-healing demo instead of the size sweep —
// a rank is killed mid-collective (--kill=RANK, --kill-at=MICROS) and the
// survivors revoke, agree on the failure set, shrink, and re-issue on the
// survivor communicator. Combine with --trace to see the revoke/agree/shrink
// protocol events in Perfetto. See DESIGN.md §13 for the recovery model.
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/coll/library.hpp"
#include "src/coll/persistent.hpp"
#include "src/coll/selfheal.hpp"
#include "src/gpu/gpu_coll.hpp"
#include "src/mpi/comm_ft.hpp"
#include "src/mpi/errors.hpp"
#include "src/obs/export.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sharded_engine.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/json.hpp"
#include "src/support/table.hpp"
#include "src/topo/presets.hpp"
#include "src/tune/tuner.hpp"

using namespace adapt;

namespace {

/// `adaptsim --recover`: one engine run with a seeded rank death and the
/// self-healing wrapper healing around it. Prints the per-rank outcome
/// (error code, attempt count, survivor membership) instead of timings.
int run_recover_demo(const bench::Cli& cli, const topo::Machine& machine,
                     const mpi::Comm& world, const std::string& op,
                     Bytes msg) {
  const int ranks = world.size();
  if (ranks > 64) {
    std::cerr << "--recover tracks membership in 64-bit masks; use "
                 "--ranks 64 or fewer (got " << ranks << ")\n";
    return 1;
  }
  const Rank victim = static_cast<Rank>(cli.get_int("kill", 1));
  // Default lands while the victim still holds undelivered segments of the
  // default 64 KB message, so the survivors must detect, shrink, and retry
  // (attempt 2 on the survivor communicator) rather than coast to a finish.
  const TimeNs kill_at = microseconds(cli.get_int("kill-at", 5));
  if (victim < 0 || victim >= ranks) {
    std::cerr << "--kill must name a rank in [0, " << ranks << ")\n";
    return 1;
  }

  runtime::SimEngineOptions options;
  // Failure detection rides on the retransmit layer: a peer whose acks stop
  // coming exhausts the retry budget and is reported to the detector, so
  // tighten the timeouts from their WAN-safe defaults to demo scale.
  mpi::ReliabilityConfig reliability;
  reliability.ack_timeout = microseconds(100);
  reliability.per_byte = 2;
  reliability.backoff = 2.0;
  reliability.max_retries = 6;
  options.reliability = reliability;
  options.recovery = runtime::RecoveryOptions{};
  net::FaultPlan::Death death;
  death.rank = victim;
  death.at = kill_at;
  options.faults.deaths.push_back(death);
  std::shared_ptr<obs::Recorder> recorder;
  if (cli.has("trace") || cli.has("metrics") || cli.has("json")) {
    recorder = std::make_shared<obs::Recorder>();
    options.recorder = recorder;
  }
  runtime::SimEngine engine(machine, options);

  std::cout << "recover demo: " << op << " of " << format_bytes(msg) << " on "
            << ranks << " ranks, killing rank " << victim << " at "
            << kill_at / 1000 << " µs\n\n";

  struct RankOut {
    mpi::ErrCode code = mpi::ErrCode::kOk;
    int attempts = 0;
    std::uint64_t survivors = 0;
    TimeNs finish = 0;
  };
  std::vector<RankOut> outs(static_cast<std::size_t>(ranks));
  std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(ranks));
  coll::ResilientOpts opts;
  opts.coll.segment_size = std::min<Bytes>(msg, kib(16));

  const auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    const auto r = static_cast<std::size_t>(ctx.rank());
    auto& buf = bufs[r];
    buf.assign(static_cast<std::size_t>(msg),
               static_cast<std::byte>(ctx.rank() + 1));
    const mpi::MutView view{buf.data(), static_cast<Bytes>(buf.size())};
    try {
      // Plain if/else, not a conditional expression: GCC 12 miscompiles
      // `cond ? co_await a : co_await b` (the unselected arm's frame slot
      // clobbers the result).
      coll::ResilientResult res;
      if (op == "bcast") {
        res = co_await coll::resilient_bcast(ctx, world, view, 0, opts);
      } else {
        res = co_await coll::resilient_allreduce(ctx, world, view,
                                                 mpi::ReduceOp::kBor,
                                                 mpi::Datatype::kUint8, opts);
      }
      outs[r].code = res.code;
      outs[r].attempts = res.attempts;
      outs[r].survivors = mpi::member_mask(res.comm);
    } catch (const mpi::FaultError& e) {
      outs[r].code = e.code();  // the victim's own teardown lands here
    }
    outs[r].finish = ctx.now();
  };
  engine.run(program);

  Table table({"rank", "code", "attempts", "survivors", "finish(ms)"});
  for (Rank g = 0; g < ranks; ++g) {
    const RankOut& o = outs[static_cast<std::size_t>(g)];
    std::ostringstream survivors;
    if (o.survivors != 0) survivors << "0x" << std::hex << o.survivors;
    std::ostringstream finish;
    finish << std::fixed << std::setprecision(2)
           << static_cast<double>(o.finish) / 1e6;
    table.add_row({std::to_string(g), mpi::err_name(o.code),
                   o.attempts != 0 ? std::to_string(o.attempts) : "",
                   survivors.str(), finish.str()});
  }
  table.print(std::cout);
  std::cout << "\nrank " << victim << " reports its own death; every "
            << "survivor agrees on the failure set, shrinks, and finishes "
            << "on the survivor communicator.\n";
  if (recorder) {
    // Surface the recovery timeline as numbers: how fast the failure was
    // detected (death instant -> first kFailNotice, per rank), how much
    // protocol traffic the revoke flood and agreement rounds cost, and what
    // the reliability layer burned on the dead peer before giving up.
    const obs::MetricsRegistry& m = recorder->metrics();
    const obs::Histogram& detect =
        recorder->metrics().histogram("recovery.detect_latency_ns");
    std::cout << "\nrecovery counters:\n";
    for (const char* name :
         {"recovery.fail_notices", "recovery.revokes",
          "recovery.revoke_frames", "recovery.agree_frames",
          "recovery.agree_decided", "recovery.agreements", "retransmits",
          "give_ups"}) {
      std::cout << "  " << name << " = " << m.counter_value(name) << "\n";
    }
    std::cout << "  recovery.detect_latency_ns: count=" << detect.count
              << " mean=" << std::fixed << std::setprecision(0)
              << detect.mean() << " max=" << detect.max << "\n";
    if (cli.has("json")) {
      const std::string path = cli.get("json", "adaptsim.recover.json");
      std::ostringstream js;
      js << "{\n  \"schema\": \"adapt-recover-report-v1\",\n"
         << "  \"op\": " << json_quote(op) << ",\n  \"ranks\": " << ranks
         << ",\n  \"victim\": " << victim
         << ",\n  \"kill_at_ns\": " << kill_at << ",\n  \"outcomes\": [";
      for (Rank g = 0; g < ranks; ++g) {
        const RankOut& o = outs[static_cast<std::size_t>(g)];
        js << (g == 0 ? "\n" : ",\n") << "    {\"rank\": " << g
           << ", \"code\": " << json_quote(mpi::err_name(o.code))
           << ", \"attempts\": " << o.attempts << ", \"survivors\": "
           << o.survivors << ", \"finish_ns\": " << o.finish << "}";
      }
      js << "\n  ],\n  \"recovery\": {";
      bool first = true;
      for (const auto& [name, value] : m.counters()) {
        js << (first ? "\n" : ",\n") << "    " << json_quote(name) << ": "
           << value;
        first = false;
      }
      js << (first ? "\n" : ",\n") << "    \"detect_latency_ns\": {\"count\": "
         << detect.count << ", \"sum\": " << detect.sum
         << ", \"max\": " << detect.max << "}\n  }\n}\n";
      std::ofstream out(path);
      out << js.str();
      if (!out) {
        std::cerr << "cannot write --json file " << path << "\n";
        return 1;
      }
      std::cout << "json report: " << path << "\n";
    }
    if (cli.has("metrics")) {
      const std::string path = cli.get("metrics", "adaptsim.metrics.csv");
      if (!obs::write_metrics_file(*recorder, path)) {
        std::cerr << "cannot write --metrics file " << path << "\n";
        return 1;
      }
      std::cout << "metrics: " << path << "\n";
    }
    if (cli.has("trace")) {
      const std::string path = cli.get("trace", "adaptsim.trace.json");
      if (!obs::write_trace_file(*recorder, path)) {
        std::cerr << "cannot write --trace file " << path << "\n";
        return 1;
      }
      std::cout << "trace: " << path << "  — load at ui.perfetto.dev and "
                << "look for the revoke/agree/recover_retry spans\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const std::string lib_name = cli.get("lib", "ompi-adapt");
  const std::string op = cli.get("op", "bcast");
  const int nodes = static_cast<int>(cli.get_int("nodes", 8));
  const int noise_duty = static_cast<int>(cli.get_int("noise", 0));
  const int iters = static_cast<int>(cli.get_int("iters", 4));
  const Bytes min_msg = cli.get_int("min", kib(64));
  const Bytes max_msg = cli.get_int("max", mib(4));

  // --machine and --spec are the same thing (a topo::parse_spec string);
  // --machine reads better in docs, --spec predates it.
  const bool custom_spec = cli.has("machine") || cli.has("spec");
  topo::MachineSpec spec =
      custom_spec ? topo::parse_spec(cli.has("machine") ? cli.get("machine", "")
                                                        : cli.get("spec", ""))
                  : topo::preset(cli.get("cluster", "cori"), nodes);
  if (custom_spec) spec.nodes = std::max(spec.nodes, nodes);
  const bool gpu = spec.gpus_per_socket > 0;
  const int default_ranks =
      gpu ? spec.nodes * spec.gpus_per_node() : spec.nodes * spec.cores_per_node();
  const int ranks = static_cast<int>(cli.get_int("ranks", default_ranks));
  topo::Machine machine(spec, ranks,
                        gpu ? topo::PlacementPolicy::kByGpu
                            : topo::PlacementPolicy::kByCore);
  const mpi::Comm world = mpi::Comm::world(ranks);

  if (cli.has("recover")) return run_recover_demo(cli, machine, world, op, min_msg);

  const int shards = static_cast<int>(cli.get_int("shards", 0));
  if (shards > 0 && cli.has("persistent")) {
    std::cerr << "--shards is incompatible with --persistent (the sharded "
                 "engine has no plan cache)\n";
    return 1;
  }

  std::shared_ptr<coll::MpiLibrary> lib;
  net::GpuConfig gpu_config;
  if (lib_name.ends_with("-gpu")) {
    if (shards > 0) {
      std::cerr << "--shards is incompatible with GPU personalities (the "
                   "sharded engine is CPU-only)\n";
      return 1;
    }
    auto gpu_lib = gpu::make_gpu_library(lib_name, machine);
    gpu_config = gpu_lib->gpu_config();
    lib = gpu_lib;
  } else {
    lib = coll::make_library(lib_name, machine);
  }

  std::cout << "cluster=" << spec.name << " nodes=" << spec.nodes
            << " ranks=" << ranks << " lib=" << lib_name << " op=" << op
            << " noise=" << noise_duty << "%\n\n";
  std::shared_ptr<tune::Tuner> tuner;
  if (cli.has("tuning") || cli.has("dump-table"))
    tuner = std::make_shared<tune::Tuner>(machine);
  const bool observe = cli.has("trace") || cli.has("metrics");
  std::shared_ptr<obs::Recorder> recorder;
  Bytes traced_msg = 0;
  Table table({"message", "avg(ms)", "min(ms)", "max(ms)"});
  for (Bytes msg = min_msg; msg <= max_msg; msg *= 2) {
    traced_msg = msg;
    if (observe) {
      // One recorder observes one engine run; keep the final size's trace.
      recorder = std::make_shared<obs::Recorder>();
    }
    std::unique_ptr<runtime::Engine> engine;
    if (shards > 0) {
      runtime::ShardedEngineOptions options;
      options.shards = shards;
      options.noise = noise::paper_noise(noise_duty, 0xCAFE + noise_duty);
      options.recorder = recorder;
      engine = std::make_unique<runtime::ShardedEngine>(machine, options);
    } else {
      runtime::SimEngineOptions options;
      options.gpu = gpu_config;
      options.noise = noise::paper_noise(noise_duty, 0xCAFE + noise_duty);
      options.tuning = tuner;  // shared across sizes: the table fills once
      options.recorder = recorder;
      engine = std::make_unique<runtime::SimEngine>(machine, options);
    }
    // Per-rank persistent handles, built lazily on each rank's first
    // iteration of this message size and replayed by every later one.
    // Declared after `engine` so they are destroyed first.
    std::vector<coll::PersistentOpPtr> handles(
        static_cast<std::size_t>(ranks));
    mpi::MutView buffer{nullptr, msg};
    auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
      if (cli.has("persistent")) {
        auto& handle = handles[static_cast<std::size_t>(ctx.rank())];
        if (!handle) {
          if (op == "bcast") {
            handle = coll::bcast_init(ctx, world, buffer, 0);
          } else if (op == "reduce") {
            handle = coll::reduce_init(ctx, world, buffer, mpi::ReduceOp::kSum,
                                       mpi::Datatype::kFloat, 0);
          } else {
            throw Error("unknown --op (use bcast or reduce): " + op);
          }
        }
        if (handle->start() != mpi::ErrCode::kOk) {
          throw Error("persistent start() failed");
        }
        co_await handle->wait();
      } else if (op == "bcast") {
        co_await lib->bcast(ctx, world, buffer, 0);
      } else if (op == "reduce") {
        co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                             mpi::Datatype::kFloat, 0);
      } else {
        throw Error("unknown --op (use bcast or reduce): " + op);
      }
    };
    const auto m =
        noise_duty > 0
            ? bench::measure_throughput(*engine, world, fn,
                                        {.warmup = 1, .iterations = iters})
            : bench::measure(*engine, world, fn,
                             {.warmup = 1, .iterations = iters});
    table.add_row_numeric(format_bytes(msg),
                          {m.avg_ms(), m.min_ms(), m.max_ms()});
  }
  table.print(std::cout);
  if (recorder) {
    if (cli.has("trace")) {
      const std::string path = cli.get("trace", "adaptsim.trace.json");
      if (!obs::write_trace_file(*recorder, path)) {
        std::cerr << "cannot write --trace file " << path << "\n";
        return 1;
      }
      std::cout << "\ntrace (" << format_bytes(traced_msg)
                << " run): " << path << "  — load at ui.perfetto.dev\n";
    }
    if (cli.has("metrics")) {
      const std::string path = cli.get("metrics", "adaptsim.metrics.csv");
      if (!obs::write_metrics_file(*recorder, path)) {
        std::cerr << "cannot write --metrics file " << path << "\n";
        return 1;
      }
      std::cout << "metrics: " << path << "\n";
    }
  }
  if (tuner && cli.has("dump-table")) {
    const std::string path = cli.get("dump-table", "adaptsim.table.json");
    std::ofstream out(path);
    out << tuner->dump_json() << "\n";
    if (!out) {
      std::cerr << "cannot write --dump-table file " << path << "\n";
      return 1;
    }
    std::cout << "decision table (" << tuner->table_size()
              << " entries): " << path << "\n";
  }
  return 0;
}
