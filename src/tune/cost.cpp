#include "src/tune/cost.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/support/error.hpp"

namespace adapt::tune {

const char* op_name(Op op) {
  switch (op) {
    case Op::kBcast: return "bcast";
    case Op::kReduce: return "reduce";
  }
  return "?";
}

bool op_from_name(const std::string& name, Op* out) {
  if (name == "bcast") {
    *out = Op::kBcast;
    return true;
  }
  if (name == "reduce") {
    *out = Op::kReduce;
    return true;
  }
  return false;
}

namespace {

using coll::Style;
using coll::Tree;
using topo::Level;

/// One tree edge in its transfer direction (bcast: parent→child, reduce:
/// child→parent). `port_free` is the edge's FIFO transmit port — the model's
/// mirror of the fabric's per-(src,dst) serial key: segments between one pair
/// leave back to back, never fair-shared against each other.
struct Edge {
  Rank src = 0;  // local sender
  Rank dst = 0;  // local receiver
  TimeNs alpha = 0;
  double beta = 0.0;      ///< uncontended lane ns/B
  double beta_eff = 0.0;  ///< after the max–min contention pass
  TimeNs port_free = 0;
};

/// Shared-link inventory for the contention pass. Capacities are normalised
/// to "full-rate flows": a QPI hop or NIC direction carries one flow at full
/// lane bandwidth; a socket's shared memory carries spec.shm_parallel.
class LinkTable {
 public:
  enum Kind { kShm, kQpi, kNicTx, kNicRx, kNodeShm };

  int get(Kind kind, int index, double cap) {
    const auto [it, fresh] =
        ids_.try_emplace({static_cast<int>(kind), index},
                         static_cast<int>(capacity_.size()));
    if (fresh) capacity_.push_back(cap);
    return it->second;
  }
  const std::vector<double>& capacity() const { return capacity_; }

 private:
  std::map<std::pair<int, int>, int> ids_;
  std::vector<double> capacity_;
};

std::vector<Rank> bfs_order(const Tree& tree) {
  std::vector<Rank> order{tree.root};
  order.reserve(static_cast<std::size_t>(tree.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Rank r = order[i];
    for (const Rank c : tree.kids(r)) order.push_back(c);
  }
  return order;
}

/// Edges indexed by the non-root rank they attach to the tree (for bcast that
/// rank is the receiver, for reduce the sender).
std::vector<Edge> build_edges(const topo::Machine& machine,
                              const mpi::Comm& comm, const Tree& tree, Op op) {
  std::vector<Edge> edges(static_cast<std::size_t>(tree.size()));
  for (Rank r = 0; r < tree.size(); ++r) {
    const Rank parent = tree.up(r);
    if (parent < 0) continue;
    Edge& e = edges[static_cast<std::size_t>(r)];
    e.src = op == Op::kBcast ? parent : r;
    e.dst = op == Op::kBcast ? r : parent;
    const Level level =
        machine.level_between(comm.global(e.src), comm.global(e.dst));
    const topo::LinkParams& lane = machine.lane(level);
    e.alpha = lane.alpha;
    e.beta = e.beta_eff = lane.beta_ns_per_byte;
  }
  return edges;
}

/// Static steady-state contention: every tree edge is assumed concurrently
/// active (the pipelined steady state) and link bandwidth is split max–min,
/// exactly the fabric's sharing policy. Under kBlocking a rank's sends are
/// serialised by the style itself, so its same-level edges count as ONE flow.
void apply_contention(const topo::Machine& machine, const mpi::Comm& comm,
                      const Tree& tree, Style style, std::vector<Edge>* edges) {
  struct Flow {
    std::vector<int> links;
    std::vector<Rank> members;  ///< edge indices (non-root ranks)
  };
  LinkTable links;
  std::vector<Flow> flows;
  std::map<std::pair<Rank, int>, int> blocking_groups;  // (src, level) -> flow

  const topo::MachineSpec& spec = machine.spec();
  for (Rank r = 0; r < tree.size(); ++r) {
    if (tree.up(r) < 0) continue;
    const Edge& e = (*edges)[static_cast<std::size_t>(r)];
    const Rank gsrc = comm.global(e.src);
    const Rank gdst = comm.global(e.dst);
    const Level level = machine.level_between(gsrc, gdst);

    std::vector<int> edge_links;
    if (spec.has_shm_channel() && level != Level::kInterNode &&
        level != Level::kSelf) {
      // First-class SHM channel: same-node edges share the node's memory
      // bandwidth, mirroring ClusterNet's shm_node link.
      edge_links = {links.get(LinkTable::kNodeShm, machine.node_of(gsrc),
                              spec.shm_node_parallel)};
    } else
    switch (level) {
      case Level::kIntraSocket:
        edge_links = {links.get(LinkTable::kShm, machine.socket_id(gsrc),
                                spec.shm_parallel)};
        break;
      case Level::kInterSocket:
        edge_links = {links.get(LinkTable::kQpi, machine.node_of(gsrc), 1.0)};
        break;
      case Level::kInterNode:
        edge_links = {
            links.get(LinkTable::kNicTx, machine.node_of(gsrc), 1.0),
            links.get(LinkTable::kNicRx, machine.node_of(gdst), 1.0)};
        break;
      case Level::kSelf: continue;
    }

    int flow_id;
    if (style == Style::kBlocking) {
      const auto key = std::make_pair(e.src, static_cast<int>(level));
      const auto [it, fresh] =
          blocking_groups.try_emplace(key, static_cast<int>(flows.size()));
      if (fresh) flows.emplace_back();
      flow_id = it->second;
    } else {
      flow_id = static_cast<int>(flows.size());
      flows.emplace_back();
    }
    Flow& flow = flows[static_cast<std::size_t>(flow_id)];
    flow.members.push_back(r);
    for (const int l : edge_links)
      if (std::find(flow.links.begin(), flow.links.end(), l) ==
          flow.links.end())
        flow.links.push_back(l);
  }

  // Progressive filling: repeatedly saturate the most contended link, fixing
  // its flows at the fair share; flows never exceed 1.0 (the lane rate).
  std::vector<double> rate(flows.size(), 0.0);
  std::vector<bool> fixed(flows.size(), false);
  std::vector<double> residual = links.capacity();
  std::vector<int> unfixed_on(residual.size(), 0);
  for (const Flow& f : flows)
    for (const int l : f.links) ++unfixed_on[static_cast<std::size_t>(l)];

  std::size_t remaining = flows.size();
  while (remaining > 0) {
    double share = 1.0;
    int bottleneck = -1;
    for (std::size_t l = 0; l < residual.size(); ++l) {
      if (unfixed_on[l] <= 0) continue;
      const double s = residual[l] / unfixed_on[l];
      if (s < share) {
        share = s;
        bottleneck = static_cast<int>(l);
      }
    }
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (fixed[f]) continue;
      const bool capped =
          bottleneck < 0 ||
          std::find(flows[f].links.begin(), flows[f].links.end(),
                    bottleneck) == flows[f].links.end();
      if (capped && bottleneck >= 0) continue;  // only the bottleneck's flows
      rate[f] = share;
      fixed[f] = true;
      --remaining;
      for (const int l : flows[f].links) {
        residual[static_cast<std::size_t>(l)] -= share;
        --unfixed_on[static_cast<std::size_t>(l)];
      }
    }
    if (bottleneck < 0) break;  // everyone fixed at the 1.0 lane cap
  }

  for (std::size_t f = 0; f < flows.size(); ++f) {
    const double r = std::max(rate[f], 1e-9);
    for (const Rank m : flows[f].members)
      (*edges)[static_cast<std::size_t>(m)].beta_eff =
          (*edges)[static_cast<std::size_t>(m)].beta / r;
  }
}

/// One segment over one edge. Eager: the payload ships immediately and is
/// matched NIC-side. Rendezvous: two α-only control legs (RTS, CTS) precede
/// the bulk fabric transfer and the receiver finalises the match for
/// cpu_overhead on its progress context.
struct Xfer {
  TimeNs arrival = 0;      ///< data usable at the receiver
  TimeNs sender_done = 0;  ///< send-completion visible to the sender
};

Xfer transfer(Edge& e, Bytes len, TimeNs ready, const topo::MachineSpec& spec) {
  const TimeNs wire =
      e.alpha + static_cast<TimeNs>(e.beta_eff * static_cast<double>(len));
  if (len <= spec.eager_threshold) {
    const TimeNs start = std::max(ready, e.port_free);
    e.port_free = start + wire;
    return {start + wire, start + wire};
  }
  const TimeNs start = std::max(ready + 2 * e.alpha, e.port_free);
  e.port_free = start + wire;
  return {start + wire + spec.cpu_overhead, start + wire};
}

TimeNs walk_bcast(const topo::MachineSpec& spec, const Tree& tree,
                  const coll::Segmenter& seg, Style style,
                  std::vector<Edge>* edges) {
  const int S = seg.count();
  const TimeNs oh = spec.cpu_overhead;
  std::vector<std::vector<TimeNs>> have(
      static_cast<std::size_t>(tree.size()),
      std::vector<TimeNs>(static_cast<std::size_t>(S), 0));
  const auto at = [edges](Rank r) -> Edge& {
    return (*edges)[static_cast<std::size_t>(r)];
  };

  TimeNs total = 0;
  for (const Rank r : bfs_order(tree)) {
    const auto& kids = tree.kids(r);
    const bool is_root = tree.up(r) < 0;
    const auto& mine = have[static_cast<std::size_t>(r)];
    TimeNs cur = 0;

    switch (style) {
      case Style::kBlocking:
        // Algorithm 1: recv segment s, then await each child send in order.
        for (int s = 0; s < S; ++s) {
          if (!is_root)
            cur = std::max(cur + oh, mine[static_cast<std::size_t>(s)]);
          for (const Rank c : kids) {
            cur += oh;
            const Xfer x = transfer(at(c), seg.length(s), cur, spec);
            have[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] =
                x.arrival;
            cur = x.sender_done;
          }
        }
        break;

      case Style::kNonblocking:
        // Algorithm 2: two pre-posted receives, isend fan-out, Waitall per
        // segment.
        if (!is_root) cur += std::min(2, S) * oh;
        for (int s = 0; s < S; ++s) {
          if (!is_root) {
            cur = std::max(cur, mine[static_cast<std::size_t>(s)]);
            if (s + 2 < S) cur += oh;  // re-arm the receive window
          }
          TimeNs waitall = cur;
          for (const Rank c : kids) {
            cur += oh;
            const Xfer x = transfer(at(c), seg.length(s), cur, spec);
            have[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] =
                x.arrival;
            waitall = std::max(waitall, x.sender_done);
          }
          cur = std::max(cur, waitall);
        }
        break;

      case Style::kAdapt: {
        // Algorithm 3: the arrival callback forwards each segment from the
        // progress context; the per-edge FIFO port does the pipelining.
        TimeNs prog = 0;
        for (int s = 0; s < S; ++s) {
          const TimeNs ready =
              is_root ? 0 : mine[static_cast<std::size_t>(s)];
          for (const Rank c : kids) {
            prog = std::max(prog, ready) + oh;
            const Xfer x = transfer(at(c), seg.length(s), prog, spec);
            have[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)] =
                x.arrival;
            cur = std::max(cur, x.sender_done);
          }
        }
        break;
      }
    }

    if (!is_root && S > 0)
      cur = std::max(cur, mine[static_cast<std::size_t>(S - 1)]);
    total = std::max(total, cur);
  }
  return total;
}

TimeNs walk_reduce(const topo::MachineSpec& spec, const Tree& tree,
                   const coll::Segmenter& seg, Style style, double gamma_scale,
                   std::vector<Edge>* edges) {
  const int S = seg.count();
  const TimeNs oh = spec.cpu_overhead;
  const auto fold = [&](int s) {
    return static_cast<TimeNs>(spec.reduce_gamma * gamma_scale *
                               static_cast<double>(seg.length(s)));
  };
  const auto at = [edges](Rank r) -> Edge& {
    return (*edges)[static_cast<std::size_t>(r)];
  };
  // up[r][s]: when rank r's segment-s contribution is usable at its parent.
  std::vector<std::vector<TimeNs>> up(
      static_cast<std::size_t>(tree.size()),
      std::vector<TimeNs>(static_cast<std::size_t>(S), 0));

  std::vector<Rank> order = bfs_order(tree);
  std::reverse(order.begin(), order.end());  // children before parents

  TimeNs total = 0;
  for (const Rank r : order) {
    const auto& kids = tree.kids(r);
    const bool is_root = tree.up(r) < 0;
    TimeNs cur = 0;

    switch (style) {
      case Style::kBlocking:
        // Recv + accumulate each child in order on the main thread, then one
        // awaited send up.
        for (int s = 0; s < S; ++s) {
          for (const Rank c : kids) {
            cur = std::max(
                cur + oh,
                up[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)]);
            cur += fold(s);
          }
          if (!is_root) {
            cur += oh;
            const Xfer x = transfer(at(r), seg.length(s), cur, spec);
            up[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)] =
                x.arrival;
            cur = x.sender_done;
          }
        }
        break;

      case Style::kNonblocking: {
        // Waitall the child receives per segment, accumulate sequentially,
        // keep one send up in flight.
        TimeNs pending = 0;
        for (int s = 0; s < S; ++s) {
          for (const Rank c : kids) {
            cur = std::max(
                cur + oh,
                up[static_cast<std::size_t>(c)][static_cast<std::size_t>(s)]);
            cur += fold(s);
          }
          if (!is_root) {
            cur = std::max(cur, pending);
            cur += oh;
            const Xfer x = transfer(at(r), seg.length(s), cur, spec);
            up[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)] =
                x.arrival;
            pending = x.sender_done;
          }
        }
        cur = std::max(cur, pending);
        break;
      }

      case Style::kAdapt: {
        // Folds run on the progress context (defer_progress) — serialised
        // per rank, in ARRIVAL order (the sim is event-driven: an early
        // child's contribution folds while a slow subtree is still in
        // flight). Each child has M pre-posted receive windows, reposted
        // from the fold callback: once a fast sender drains them, later
        // segments land unexpected and pay the allocation+copy penalty
        // instead of the pre-posted finalise (endpoint.cpp's eager paths).
        struct Arrival {
          TimeNs at = 0;
          Rank child = 0;
          int s = 0;
        };
        std::vector<Arrival> arrivals;
        arrivals.reserve(kids.size() * static_cast<std::size_t>(S));
        for (std::size_t c = 0; c < kids.size(); ++c)
          for (int s = 0; s < S; ++s)
            arrivals.push_back(
                {up[static_cast<std::size_t>(kids[c])]
                   [static_cast<std::size_t>(s)],
                 static_cast<Rank>(c), s});
        std::stable_sort(arrivals.begin(), arrivals.end(),
                         [](const Arrival& a, const Arrival& b) {
                           return a.at < b.at;
                         });
        const int windows = coll::CollOpts{}.outstanding_recvs;
        // fold_done[c][s]: when child c's segment-s fold finished (the
        // moment window s+M is reposted for that child).
        std::vector<std::vector<TimeNs>> fold_done(
            kids.size(), std::vector<TimeNs>(static_cast<std::size_t>(S), 0));
        std::vector<int> contributed(static_cast<std::size_t>(S), 0);
        std::vector<TimeNs> contrib(static_cast<std::size_t>(S), 0);
        TimeNs prog = 0;
        for (const Arrival& a : arrivals) {
          const std::size_t c = static_cast<std::size_t>(a.child);
          const TimeNs posted =
              a.s < windows
                  ? 0
                  : fold_done[c][static_cast<std::size_t>(a.s - windows)];
          TimeNs cost = fold(a.s);
          TimeNs match = a.at;
          if (posted <= a.at) {
            cost += oh;  // pre-posted: NIC match + finalise
          } else {
            // Waits in the unexpected queue for the repost and pays the
            // allocation+copy penalty. A saturated progress context also
            // starves the upstream sender's completion callbacks (its pump
            // restarts queue behind the fold backlog), so the fold/wire
            // overlap collapses: charge the child's wire time serially.
            const Edge& ce = at(kids[c]);
            match = posted;
            cost += spec.unexpected_overhead +
                    static_cast<TimeNs>(spec.memcpy_beta *
                                        static_cast<double>(seg.length(a.s))) +
                    ce.alpha +
                    static_cast<TimeNs>(ce.beta_eff *
                                        static_cast<double>(seg.length(a.s)));
          }
          prog = std::max(prog, match) + cost;
          fold_done[c][static_cast<std::size_t>(a.s)] = prog;
          if (++contributed[static_cast<std::size_t>(a.s)] ==
              static_cast<int>(kids.size()))
            contrib[static_cast<std::size_t>(a.s)] = prog;
        }
        if (is_root) {
          for (const TimeNs t : contrib) cur = std::max(cur, t);
        } else {
          for (int s = 0; s < S; ++s) {
            const TimeNs ready = contrib[static_cast<std::size_t>(s)] + oh;
            const Xfer x = transfer(at(r), seg.length(s), ready, spec);
            up[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)] =
                x.arrival;
            cur = std::max(cur, x.sender_done);
          }
        }
        break;
      }
    }
    total = std::max(total, cur);
  }
  return total;
}

}  // namespace

TimeNs CostModel::predict(const Workload& work, const mpi::Comm& comm,
                          const coll::Tree& tree) const {
  ADAPT_CHECK(tree.size() == comm.size())
      << "tree over " << tree.size() << " ranks priced on a " << comm.size()
      << "-rank communicator";
  const coll::Segmenter seg(work.bytes, std::max<Bytes>(1, work.segment));
  std::vector<Edge> edges = build_edges(machine_, comm, tree, work.op);
  apply_contention(machine_, comm, tree, work.style, &edges);
  return work.op == Op::kBcast
             ? walk_bcast(machine_.spec(), tree, seg, work.style, &edges)
             : walk_reduce(machine_.spec(), tree, seg, work.style,
                           work.gamma_scale, &edges);
}

}  // namespace adapt::tune
