#include "src/support/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace adapt {

namespace {

std::string format_scaled(double value, const char* unit) {
  std::array<char, 48> buf{};
  if (value >= 100.0) {
    std::snprintf(buf.data(), buf.size(), "%.0f%s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf.data(), buf.size(), "%.1f%s", value, unit);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.2f%s", value, unit);
  }
  return buf.data();
}

}  // namespace

std::string format_bytes(Bytes b) {
  const double v = static_cast<double>(b);
  if (b >= gib(1)) return format_scaled(v / static_cast<double>(gib(1)), "GB");
  if (b >= mib(1)) return format_scaled(v / static_cast<double>(mib(1)), "MB");
  if (b >= kib(1)) return format_scaled(v / static_cast<double>(kib(1)), "KB");
  return std::to_string(b) + "B";
}

std::string format_time(TimeNs t) {
  const double v = static_cast<double>(t);
  if (t < 0) return "-" + format_time(-t);
  if (t >= seconds(1)) return format_scaled(v / 1e9, "s");
  if (t >= milliseconds(1)) return format_scaled(v / 1e6, "ms");
  if (t >= microseconds(1)) return format_scaled(v / 1e3, "us");
  return std::to_string(t) + "ns";
}

double gbps(Bytes bytes, TimeNs duration) {
  if (duration <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / static_cast<double>(duration);
}

}  // namespace adapt
