// Randomised property tests: the collectives must deliver correct data over
// ARBITRARY spanning trees (not just the named builders), arbitrary segment
// sizes, pipeline depths, roots, communicator subsets and machine shapes.
// Each case draws its configuration from a seeded generator, so failures
// reproduce exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>

#include "src/coll/coll.hpp"
#include "src/coll/persistent.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/runtime/thread_engine.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

namespace adapt::coll {
namespace {

using runtime::Context;
using runtime::SimEngine;
using runtime::ThreadEngine;

/// A uniformly random spanning tree over [0, n) rooted at `root`: nodes are
/// attached in random order to a random already-attached parent.
Tree random_tree(int n, Rank root, Rng& rng) {
  Tree t;
  t.root = root;
  t.parent.assign(static_cast<std::size_t>(n), -1);
  t.children.resize(static_cast<std::size_t>(n));
  std::vector<Rank> order;
  order.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    if (r != root) order.push_back(r);
  }
  // Fisher-Yates shuffle with our deterministic generator.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  std::vector<Rank> attached = {root};
  for (Rank r : order) {
    const Rank parent = attached[rng.next_below(attached.size())];
    t.parent[static_cast<std::size_t>(r)] = parent;
    t.children[static_cast<std::size_t>(parent)].push_back(r);
    attached.push_back(r);
  }
  t.validate();
  return t;
}

struct FuzzConfig {
  int nranks;
  Rank root;
  Bytes bytes;
  Bytes segment;
  int n_out;
  int m_out;
  Style style;
  std::uint64_t tree_seed;
};

FuzzConfig draw(Rng& rng) {
  FuzzConfig c;
  c.nranks = static_cast<int>(rng.next_in(2, 40));
  c.root = static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(c.nranks)));
  c.bytes = rng.next_in(0, 6000);
  c.bytes -= c.bytes % 4;  // int32 payloads
  c.segment = rng.next_in(1, 2048);
  c.segment -= c.segment % 4;
  if (c.segment == 0) c.segment = 4;
  c.n_out = static_cast<int>(rng.next_in(1, 6));
  c.m_out = static_cast<int>(rng.next_in(1, 8));
  const auto s = rng.next_below(3);
  c.style = s == 0 ? Style::kBlocking
                   : (s == 1 ? Style::kNonblocking : Style::kAdapt);
  c.tree_seed = rng.next_u64();
  return c;
}

std::string describe(const FuzzConfig& c) {
  return std::string(style_name(c.style)) + " n=" + std::to_string(c.nranks) +
         " root=" + std::to_string(c.root) +
         " bytes=" + std::to_string(c.bytes) +
         " seg=" + std::to_string(c.segment) +
         " N=" + std::to_string(c.n_out) + " M=" + std::to_string(c.m_out) +
         " tree_seed=" + std::to_string(c.tree_seed);
}

class CollectiveFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CollectiveFuzz, BcastOnRandomTrees) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 6; ++iter) {
    const FuzzConfig c = draw(rng);
    Rng tree_rng(c.tree_seed);
    const Tree tree = random_tree(c.nranks, c.root, tree_rng);
    topo::Machine m(topo::cori(2), c.nranks);
    SimEngine engine(m);
    const mpi::Comm world = mpi::Comm::world(c.nranks);

    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(c.nranks),
        std::vector<std::byte>(static_cast<std::size_t>(c.bytes)));
    for (auto& b : bufs[static_cast<std::size_t>(c.root)]) {
      b = std::byte(rng.next_below(256));
    }
    CollOpts opts;
    opts.segment_size = c.segment;
    opts.outstanding_sends = c.n_out;
    opts.outstanding_recvs = c.m_out;
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await bcast(ctx, world, mpi::MutView{mine.data(), c.bytes}, c.root,
                     tree, c.style, opts);
    };
    ASSERT_NO_THROW(engine.run(program)) << describe(c);
    for (int r = 0; r < c.nranks; ++r) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)],
                bufs[static_cast<std::size_t>(c.root)])
          << describe(c) << " rank " << r;
    }
  }
}

TEST_P(CollectiveFuzz, ReduceOnRandomTrees) {
  Rng rng(GetParam() ^ 0x5eed);
  for (int iter = 0; iter < 6; ++iter) {
    const FuzzConfig c = draw(rng);
    Rng tree_rng(c.tree_seed);
    const Tree tree = random_tree(c.nranks, c.root, tree_rng);
    topo::Machine m(topo::cori(2), c.nranks);
    SimEngine engine(m);
    const mpi::Comm world = mpi::Comm::world(c.nranks);

    const std::size_t elems = static_cast<std::size_t>(c.bytes) / 4;
    std::vector<std::vector<std::int32_t>> contrib(
        static_cast<std::size_t>(c.nranks));
    std::vector<std::int32_t> expected(elems, 0);
    for (int r = 0; r < c.nranks; ++r) {
      auto& v = contrib[static_cast<std::size_t>(r)];
      v.resize(elems);
      for (std::size_t i = 0; i < elems; ++i) {
        v[i] = static_cast<std::int32_t>(rng.next_in(-1000, 1000));
        expected[i] += v[i];
      }
    }
    CollOpts opts;
    opts.segment_size = c.segment;
    opts.outstanding_sends = c.n_out;
    opts.outstanding_recvs = c.m_out;
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
      co_await reduce(ctx, world,
                      mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                                   c.bytes},
                      mpi::ReduceOp::kSum, mpi::Datatype::kInt32, c.root,
                      tree, c.style, opts);
    };
    ASSERT_NO_THROW(engine.run(program)) << describe(c);
    EXPECT_EQ(contrib[static_cast<std::size_t>(c.root)], expected)
        << describe(c);
  }
}

TEST_P(CollectiveFuzz, BcastOnRandomSubCommunicators) {
  Rng rng(GetParam() ^ 0xc0de);
  for (int iter = 0; iter < 4; ++iter) {
    const int world_n = static_cast<int>(rng.next_in(8, 48));
    topo::Machine m(topo::cori(2), world_n);
    // Random subset of at least 2 members.
    std::vector<Rank> members;
    for (Rank r = 0; r < world_n; ++r) {
      if (rng.next_double() < 0.5) members.push_back(r);
    }
    if (members.size() < 2) members = {0, static_cast<Rank>(world_n - 1)};
    const mpi::Comm sub(members);
    const Rank root =
        static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(sub.size())));
    Rng tree_rng(rng.next_u64());
    const Tree tree = random_tree(sub.size(), root, tree_rng);

    SimEngine engine(m);
    const Bytes bytes = 512;
    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(world_n), std::vector<std::byte>(512));
    bufs[static_cast<std::size_t>(sub.global(root))].assign(512,
                                                            std::byte(0x3C));
    auto program = [&](Context& ctx) -> sim::Task<> {
      if (!sub.contains(ctx.rank())) co_return;
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await bcast(ctx, sub, mpi::MutView{mine.data(), bytes}, root, tree,
                     Style::kAdapt, CollOpts{.segment_size = 128});
    };
    engine.run(program);
    for (Rank g : sub.members()) {
      EXPECT_EQ(bufs[static_cast<std::size_t>(g)][511], std::byte(0x3C));
    }
  }
}

TEST_P(CollectiveFuzz, AdaptBcastUnderPerturbedSchedules) {
  // The fuzzed configurations again, but each run on a randomly perturbed
  // event schedule (seeded tie-shuffling + delivery jitter): payload
  // correctness may not depend on which legal schedule the engine picks.
  Rng rng(GetParam() ^ 0x9e57);
  for (int iter = 0; iter < 4; ++iter) {
    const FuzzConfig c = draw(rng);
    const std::uint64_t perturb_seed = rng.next_u64() | 1;  // never 0
    Rng tree_rng(c.tree_seed);
    const Tree tree = random_tree(c.nranks, c.root, tree_rng);
    topo::Machine m(topo::cori(2), c.nranks);
    runtime::SimEngineOptions engine_opts;
    engine_opts.perturb = sim::PerturbConfig{
        .seed = perturb_seed, .max_jitter = microseconds(5)};
    SimEngine engine(m, engine_opts);
    const mpi::Comm world = mpi::Comm::world(c.nranks);

    std::vector<std::vector<std::byte>> bufs(
        static_cast<std::size_t>(c.nranks),
        std::vector<std::byte>(static_cast<std::size_t>(c.bytes)));
    for (auto& b : bufs[static_cast<std::size_t>(c.root)]) {
      b = std::byte(rng.next_below(256));
    }
    CollOpts opts;
    opts.segment_size = c.segment;
    opts.outstanding_sends = c.n_out;
    opts.outstanding_recvs = c.m_out;
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await bcast(ctx, world, mpi::MutView{mine.data(), c.bytes}, c.root,
                     tree, Style::kAdapt, opts);
    };
    ASSERT_NO_THROW(engine.run(program))
        << describe(c) << " perturb_seed=" << perturb_seed;
    for (int r = 0; r < c.nranks; ++r) {
      ASSERT_EQ(bufs[static_cast<std::size_t>(r)],
                bufs[static_cast<std::size_t>(c.root)])
          << describe(c) << " perturb_seed=" << perturb_seed << " rank " << r;
    }
  }
}

TEST_P(CollectiveFuzz, AdaptReduceUnderPerturbedSchedules) {
  Rng rng(GetParam() ^ 0x7a1e);
  for (int iter = 0; iter < 3; ++iter) {
    const FuzzConfig c = draw(rng);
    const std::uint64_t perturb_seed = rng.next_u64() | 1;
    Rng tree_rng(c.tree_seed);
    const Tree tree = random_tree(c.nranks, c.root, tree_rng);
    topo::Machine m(topo::cori(2), c.nranks);
    runtime::SimEngineOptions engine_opts;
    engine_opts.perturb = sim::PerturbConfig{
        .seed = perturb_seed, .max_jitter = microseconds(5)};
    SimEngine engine(m, engine_opts);
    const mpi::Comm world = mpi::Comm::world(c.nranks);

    const std::size_t elems = static_cast<std::size_t>(c.bytes) / 4;
    std::vector<std::vector<std::int32_t>> contrib(
        static_cast<std::size_t>(c.nranks));
    std::vector<std::int32_t> expected(elems, 0);
    for (int r = 0; r < c.nranks; ++r) {
      auto& v = contrib[static_cast<std::size_t>(r)];
      v.resize(elems);
      for (std::size_t i = 0; i < elems; ++i) {
        v[i] = static_cast<std::int32_t>(rng.next_in(-1000, 1000));
        expected[i] += v[i];
      }
    }
    CollOpts opts;
    opts.segment_size = c.segment;
    opts.outstanding_sends = c.n_out;
    opts.outstanding_recvs = c.m_out;
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
      co_await reduce(ctx, world,
                      mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                                   c.bytes},
                      mpi::ReduceOp::kSum, mpi::Datatype::kInt32, c.root,
                      tree, Style::kAdapt, opts);
    };
    ASSERT_NO_THROW(engine.run(program))
        << describe(c) << " perturb_seed=" << perturb_seed;
    EXPECT_EQ(contrib[static_cast<std::size_t>(c.root)], expected)
        << describe(c) << " perturb_seed=" << perturb_seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveFuzz,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Persistent-collective lifecycle fuzz: several independent handles per rank,
// every round interleaving start / pready / wait in a seeded per-rank order.
// start() and pready() never suspend, so any per-rank ordering that keeps
// start -> pready -> wait per handle is deadlock-free by construction — the
// property this fuzz hammers on is that arbitrary interleavings (including
// out-of-order and duplicate pready) still deliver correct payloads.
// ---------------------------------------------------------------------------

struct PersistentHandleCfg {
  PersistentOp::Kind kind;
  Rank root;
  Bytes bytes;
  Bytes segment;
  int partitions;  // 0 = non-partitioned
};

struct PersistentFuzzConfig {
  int nranks;
  int rounds;
  std::vector<PersistentHandleCfg> handles;
};

PersistentFuzzConfig draw_persistent(Rng& rng, int max_ranks, int rounds) {
  PersistentFuzzConfig c;
  c.nranks = static_cast<int>(rng.next_in(2, max_ranks));
  c.rounds = rounds;
  const int n_handles = static_cast<int>(rng.next_in(2, 4));
  for (int h = 0; h < n_handles; ++h) {
    PersistentHandleCfg hc;
    const auto k = rng.next_below(4);
    hc.kind = k == 0   ? PersistentOp::Kind::kBcast
              : k == 1 ? PersistentOp::Kind::kReduce
              : k == 2 ? PersistentOp::Kind::kAllreduce
                       : PersistentOp::Kind::kBarrier;
    hc.root =
        static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(c.nranks)));
    hc.bytes = rng.next_in(4, 3000);
    hc.bytes -= hc.bytes % 4;
    hc.segment = rng.next_in(4, 512);
    hc.segment -= hc.segment % 4;
    hc.partitions = 0;
    if (hc.kind == PersistentOp::Kind::kBarrier) {
      hc.bytes = 0;
    } else if (rng.next_below(2) == 0) {
      hc.partitions = static_cast<int>(rng.next_in(2, 6));
    }
    c.handles.push_back(hc);
  }
  return c;
}

std::string describe(const PersistentFuzzConfig& c) {
  std::string s = "n=" + std::to_string(c.nranks) +
                  " rounds=" + std::to_string(c.rounds);
  for (const PersistentHandleCfg& h : c.handles) {
    const char* kind = h.kind == PersistentOp::Kind::kBcast      ? "bcast"
                       : h.kind == PersistentOp::Kind::kReduce   ? "reduce"
                       : h.kind == PersistentOp::Kind::kAllreduce
                           ? "allreduce"
                           : "barrier";
    s += std::string(" [") + kind + " root=" + std::to_string(h.root) +
         " bytes=" + std::to_string(h.bytes) +
         " seg=" + std::to_string(h.segment) +
         " P=" + std::to_string(h.partitions) + "]";
  }
  return s;
}

template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.next_below(i)]);
  }
}

/// Per-element int32 contribution: small magnitudes so sums never overflow.
std::int32_t contrib_val(int rank, int h, int round, std::size_t i) {
  return static_cast<std::int32_t>(
      (rank * 31 + h * 17 + round * 7 + static_cast<int>(i % 97)) % 201 - 100);
}

std::byte bcast_val(const PersistentHandleCfg& h, int hi, int round,
                    std::size_t i) {
  return std::byte((static_cast<std::size_t>(h.root) * 131 +
                    static_cast<std::size_t>(hi) * 29 +
                    static_cast<std::size_t>(round) * 17 + i * 7) &
                   0xff);
}

/// Runs `c` on `engine`, reporting the first per-rank failure into
/// `errs[rank]` (string-based so the program body is thread-safe under the
/// ThreadEngine — gtest assertions are not).
void run_persistent_case(runtime::Engine& engine, const PersistentFuzzConfig& c,
                         std::uint64_t seed, std::vector<std::string>& errs) {
  const std::size_t n_handles = c.handles.size();
  const mpi::Comm world = mpi::Comm::world(c.nranks);
  errs.assign(static_cast<std::size_t>(c.nranks), "");
  // bufs[h][rank]: each handle binds its own per-rank buffer at init.
  std::vector<std::vector<std::vector<std::byte>>> bufs(n_handles);
  for (std::size_t h = 0; h < n_handles; ++h) {
    bufs[h].assign(static_cast<std::size_t>(c.nranks),
                   std::vector<std::byte>(
                       static_cast<std::size_t>(c.handles[h].bytes)));
  }

  auto program = [&](Context& ctx) -> sim::Task<> {
    const int me = ctx.rank();
    std::string& err = errs[static_cast<std::size_t>(me)];
    auto note = [&](std::string what) {
      if (err.empty()) err = std::move(what);
    };
    std::vector<PersistentOpPtr> ops;
    for (std::size_t h = 0; h < n_handles; ++h) {
      const PersistentHandleCfg& hc = c.handles[h];
      PersistentOpts popts;
      popts.coll.segment_size = hc.segment;
      popts.partitions = hc.partitions;
      mpi::MutView view{bufs[h][static_cast<std::size_t>(me)].data(),
                        hc.bytes};
      switch (hc.kind) {
        case PersistentOp::Kind::kBcast:
          ops.push_back(bcast_init(ctx, world, view, hc.root, popts));
          break;
        case PersistentOp::Kind::kReduce:
          ops.push_back(reduce_init(ctx, world, view, mpi::ReduceOp::kSum,
                                    mpi::Datatype::kInt32, hc.root, popts));
          break;
        case PersistentOp::Kind::kAllreduce:
          ops.push_back(allreduce_init(ctx, world, view, mpi::ReduceOp::kSum,
                                       mpi::Datatype::kInt32, popts));
          break;
        case PersistentOp::Kind::kBarrier:
          ops.push_back(barrier_init(ctx, world, popts));
          break;
      }
    }
    // Per-rank interleaving stream: different ranks issue their starts and
    // preadys in different orders, so cross-rank interleavings vary too.
    Rng prng(seed ^ (static_cast<std::uint64_t>(me) * 0x9e3779b97f4a7c15ull));
    std::vector<int> order(n_handles);
    for (int r = 0; r < c.rounds; ++r) {
      // Refill every handle's local data for this round.
      for (std::size_t h = 0; h < n_handles; ++h) {
        const PersistentHandleCfg& hc = c.handles[h];
        auto& mine = bufs[h][static_cast<std::size_t>(me)];
        if (hc.kind == PersistentOp::Kind::kBcast) {
          if (me == hc.root) {
            for (std::size_t i = 0; i < mine.size(); ++i) {
              mine[i] = bcast_val(hc, static_cast<int>(h), r, i);
            }
          }
        } else if (hc.kind != PersistentOp::Kind::kBarrier) {
          auto* v = reinterpret_cast<std::int32_t*>(mine.data());
          for (std::size_t i = 0; i < mine.size() / 4; ++i) {
            v[i] = contrib_val(me, static_cast<int>(h), r, i);
          }
        }
      }
      // Phase 1: start every handle, in a per-rank random order.
      for (std::size_t h = 0; h < n_handles; ++h) order[h] = static_cast<int>(h);
      shuffle(order, prng);
      for (int h : order) {
        if (ops[static_cast<std::size_t>(h)]->start() != mpi::ErrCode::kOk) {
          note("start failed, " + describe(c));
        }
      }
      // Phase 2: all (handle, partition) preadys shuffled together — out of
      // order within a handle AND interleaved across handles — plus seeded
      // duplicate preadys that must report kErrPartition without damage.
      std::vector<std::pair<int, int>> pre;
      for (std::size_t h = 0; h < n_handles; ++h) {
        for (int p = 0; p < c.handles[h].partitions; ++p) {
          pre.emplace_back(static_cast<int>(h), p);
        }
      }
      shuffle(pre, prng);
      for (const auto& [h, p] : pre) {
        if (ops[static_cast<std::size_t>(h)]->pready(p) != mpi::ErrCode::kOk) {
          note("pready failed, " + describe(c));
        }
        if (prng.next_below(4) == 0 &&
            ops[static_cast<std::size_t>(h)]->pready(p) !=
                mpi::ErrCode::kErrPartition) {
          note("duplicate pready not rejected, " + describe(c));
        }
      }
      // Phase 3: wait for every round, again in random order.
      shuffle(order, prng);
      for (int h : order) co_await ops[static_cast<std::size_t>(h)]->wait();
      // Verify this round's payloads.
      for (std::size_t h = 0; h < n_handles; ++h) {
        const PersistentHandleCfg& hc = c.handles[h];
        const auto& mine = bufs[h][static_cast<std::size_t>(me)];
        if (hc.kind == PersistentOp::Kind::kBcast) {
          for (std::size_t i = 0; i < mine.size(); ++i) {
            if (mine[i] != bcast_val(hc, static_cast<int>(h), r, i)) {
              note("bcast payload mismatch round " + std::to_string(r) +
                   ", " + describe(c));
              break;
            }
          }
        } else if (hc.kind == PersistentOp::Kind::kReduce ||
                   hc.kind == PersistentOp::Kind::kAllreduce) {
          if (hc.kind == PersistentOp::Kind::kReduce && me != hc.root) {
            continue;  // non-root reduce buffers hold partial folds
          }
          const auto* v =
              reinterpret_cast<const std::int32_t*>(mine.data());
          for (std::size_t i = 0; i < mine.size() / 4; ++i) {
            std::int32_t want = 0;
            for (int rank = 0; rank < c.nranks; ++rank) {
              want += contrib_val(rank, static_cast<int>(h), r, i);
            }
            if (v[i] != want) {
              note("reduction mismatch round " + std::to_string(r) + ", " +
                   describe(c));
              break;
            }
          }
        }
      }
    }
    for (std::size_t h = 0; h < n_handles; ++h) {
      if (ops[h]->rounds_completed() != c.rounds) {
        note("rounds_completed=" +
             std::to_string(ops[h]->rounds_completed()) + " want " +
             std::to_string(c.rounds) + ", " + describe(c));
      }
    }
  };
  engine.run(program);
}

class PersistentFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PersistentFuzz, InterleavedRoundsOnSimEngine) {
  Rng rng(GetParam() ^ 0x9e125);
  for (int iter = 0; iter < 4; ++iter) {
    const PersistentFuzzConfig c =
        draw_persistent(rng, /*max_ranks=*/16, /*rounds=*/3);
    topo::Machine m(topo::cori(2), c.nranks);
    SimEngine engine(m);
    std::vector<std::string> errs;
    const std::uint64_t seed = rng.next_u64();
    run_persistent_case(engine, c, seed, errs);
    for (int r = 0; r < c.nranks; ++r) {
      EXPECT_TRUE(errs[static_cast<std::size_t>(r)].empty())
          << "rank " << r << ": " << errs[static_cast<std::size_t>(r)]
          << " seed=" << seed;
    }
  }
}

TEST_P(PersistentFuzz, InterleavedRoundsOnThreadEngine) {
  Rng rng(GetParam() ^ 0x7712ead);
  for (int iter = 0; iter < 2; ++iter) {
    const PersistentFuzzConfig c =
        draw_persistent(rng, /*max_ranks=*/6, /*rounds=*/2);
    topo::Machine m(topo::cori(2), c.nranks);
    ThreadEngine engine(m);
    std::vector<std::string> errs;
    const std::uint64_t seed = rng.next_u64();
    run_persistent_case(engine, c, seed, errs);
    for (int r = 0; r < c.nranks; ++r) {
      EXPECT_TRUE(errs[static_cast<std::size_t>(r)].empty())
          << "rank " << r << ": " << errs[static_cast<std::size_t>(r)]
          << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistentFuzz,
                         testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace adapt::coll
