// Sharded conservative-lookahead engine: determinism, scale and topology
// tests.
//
// The contract under test (DESIGN.md §14): traces, metrics, collective
// payload bytes and the rank-state gauge are byte-identical for ANY --shards
// value, including 1. The procedural-topology pins lock the O(1) route
// arithmetic the shard mapper and the lookahead bound are built on, and the
// scale tests hold the per-rank memory footprint to a documented budget at
// 4096 and 65,536 ranks.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/coll/coll.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/mpi/payload.hpp"
#include "src/obs/export.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sharded_engine.hpp"
#include "src/topo/presets.hpp"
#include "src/topo/procedural.hpp"
#include "src/verify/conformance.hpp"
#include "tests/trace_trio.hpp"

namespace adapt {
namespace {

// ---------------------------------------------------------------------------
// Procedural topologies: route-cost pins on small hand-built instances.
// ---------------------------------------------------------------------------

TEST(ProceduralTopo, DragonflyRouteCosts) {
  // 3 groups x 2 routers x 2 ranks = 12 ranks. Betas chosen distinct so each
  // path class has a recognisable bottleneck.
  const topo::LinkParams inject{500, 0.0625};
  const topo::LinkParams local{300, 0.25};
  const topo::LinkParams global{1100, 0.5};
  topo::Dragonfly df(3, 2, 2, inject, local, global);

  EXPECT_EQ(df.nranks(), 12);
  EXPECT_EQ(df.blocks(), 3);
  EXPECT_EQ(df.name(), std::string("dragonfly(g=3,a=2,p=2)"));

  // Position arithmetic: rank -> router -> group.
  EXPECT_EQ(df.router_of(0), 0);
  EXPECT_EQ(df.router_of(5), 2);
  EXPECT_EQ(df.group_of(3), 0);
  EXPECT_EQ(df.group_of(4), 1);
  EXPECT_EQ(df.block_of(11), 2);

  // Self route is free.
  EXPECT_EQ(df.route(5, 5).alpha, 0);
  EXPECT_DOUBLE_EQ(df.route(5, 5).beta_ns_per_byte, 0.0);

  // Same router: inject + eject only.
  const topo::RouteCost same_router = df.route(0, 1);
  EXPECT_EQ(same_router.alpha, 2 * 500);
  EXPECT_DOUBLE_EQ(same_router.beta_ns_per_byte, 0.0625);

  // Same group, different router: one local hop.
  const topo::RouteCost same_group = df.route(0, 2);
  EXPECT_EQ(same_group.alpha, 2 * 500 + 300);
  EXPECT_DOUBLE_EQ(same_group.beta_ns_per_byte, 0.25);

  // Cross group: local + global + local.
  const topo::RouteCost cross = df.route(0, 4);
  EXPECT_EQ(cross.alpha, 2 * 500 + 2 * 300 + 1100);
  EXPECT_DOUBLE_EQ(cross.beta_ns_per_byte, 0.5);
  EXPECT_EQ(cross.time(1200), 2700 + 600);  // alpha + 0.5 ns/B * 1200 B

  // The sharded engine's lookahead bound is the cross-group alpha.
  EXPECT_EQ(df.min_cross_block_alpha(), 2700);
}

TEST(ProceduralTopo, FatTreeRouteCosts) {
  // k = 4: 4 pods, 2 edge switches/pod, 2 hosts/edge = 16 ranks.
  const topo::LinkParams host_edge{600, 0.125};
  const topo::LinkParams edge_agg{450, 0.25};
  const topo::LinkParams agg_core{450, 0.5};
  topo::FatTree ft(4, host_edge, edge_agg, agg_core);

  EXPECT_EQ(ft.nranks(), 16);
  EXPECT_EQ(ft.blocks(), 4);
  EXPECT_EQ(ft.edge_of(1), 0);
  EXPECT_EQ(ft.edge_of(2), 1);
  EXPECT_EQ(ft.pod_of(3), 0);
  EXPECT_EQ(ft.pod_of(4), 1);
  EXPECT_EQ(ft.block_of(15), 3);

  EXPECT_EQ(ft.route(7, 7).alpha, 0);

  // Same edge switch: host-edge up + down.
  const topo::RouteCost same_edge = ft.route(0, 1);
  EXPECT_EQ(same_edge.alpha, 2 * 600);
  EXPECT_DOUBLE_EQ(same_edge.beta_ns_per_byte, 0.125);

  // Same pod, different edge: climb to aggregation.
  const topo::RouteCost same_pod = ft.route(0, 2);
  EXPECT_EQ(same_pod.alpha, 2 * 600 + 2 * 450);
  EXPECT_DOUBLE_EQ(same_pod.beta_ns_per_byte, 0.25);

  // Cross pod: climb to core.
  const topo::RouteCost cross_pod = ft.route(0, 4);
  EXPECT_EQ(cross_pod.alpha, 2 * 600 + 2 * 450 + 2 * 450);
  EXPECT_DOUBLE_EQ(cross_pod.beta_ns_per_byte, 0.5);

  EXPECT_EQ(ft.min_cross_block_alpha(), 3000);
}

TEST(ProceduralTopo, PresetsCoverRequestedRanks) {
  // Smallest balanced dragonfly (g = a + 1, p = a) with a^2 (a + 1) >= 4096
  // is a = 16: 16 * 16 * 17 = 4352 ranks.
  const auto df = topo::presets::dragonfly(4096);
  EXPECT_EQ(df->nranks(), 4352);
  EXPECT_EQ(df->blocks(), 17);
  EXPECT_GT(df->min_cross_block_alpha(), 0);

  // Smallest even k with k^3 / 4 >= 4096 is k = 26: 4394 ranks.
  const auto ft = topo::presets::fat_tree(4096);
  EXPECT_EQ(ft->nranks(), 4394);
  EXPECT_EQ(ft->blocks(), 26);
  EXPECT_GT(ft->min_cross_block_alpha(), 0);

  // Million-rank instances stay O(1) state: constructing them is free.
  EXPECT_GE(topo::presets::dragonfly(1 << 20)->nranks(), 1 << 20);
  EXPECT_GE(topo::presets::fat_tree(1 << 20)->nranks(), 1 << 20);
}

// ---------------------------------------------------------------------------
// Shard mapper: whole blocks, balanced, clamped.
// ---------------------------------------------------------------------------

void expect_valid_map(const topo::ShardMap& map, const topo::ProcTopology& t,
                      int expected_shards) {
  EXPECT_EQ(map.shards, expected_shards);
  ASSERT_EQ(static_cast<int>(map.ranks.size()), expected_shards);
  ASSERT_EQ(static_cast<int>(map.shard_of.size()), t.nranks());
  // Every rank appears exactly once, in its recorded shard, and no block is
  // split across shards (the lookahead bound depends on this).
  std::vector<int> seen(static_cast<std::size_t>(t.nranks()), 0);
  std::map<int, int> block_shard;
  for (int s = 0; s < expected_shards; ++s) {
    EXPECT_FALSE(map.ranks[static_cast<std::size_t>(s)].empty());
    for (const Rank r : map.ranks[static_cast<std::size_t>(s)]) {
      ++seen[static_cast<std::size_t>(r)];
      EXPECT_EQ(map.shard_of[static_cast<std::size_t>(r)], s);
      const auto [it, fresh] = block_shard.emplace(t.block_of(r), s);
      if (!fresh) {
        EXPECT_EQ(it->second, s) << "block split across shards";
      }
    }
  }
  for (const int n : seen) EXPECT_EQ(n, 1);
}

TEST(ShardMap, DealsWholeBlocksEvenly) {
  // 4 groups x 2 x 2 = 16 ranks in 4 blocks of 4.
  topo::Dragonfly df(4, 2, 2, {500, 0.0625}, {300, 0.25}, {1100, 0.5});

  const topo::ShardMap two = topo::make_shard_map(df, 2);
  expect_valid_map(two, df, 2);
  EXPECT_EQ(two.ranks[0].size(), 8u);
  EXPECT_EQ(two.ranks[1].size(), 8u);

  const topo::ShardMap three = topo::make_shard_map(df, 3);
  expect_valid_map(three, df, 3);

  // Clamped to the block count: more shards than blocks is not allowed (a
  // block interior route would otherwise cross shards with alpha below the
  // lookahead bound).
  const topo::ShardMap clamped = topo::make_shard_map(df, 8);
  expect_valid_map(clamped, df, 4);

  const topo::ShardMap one = topo::make_shard_map(df, 1);
  expect_valid_map(one, df, 1);
  EXPECT_EQ(one.ranks[0].size(), 16u);
}

TEST(ShardMap, MachineBlocksAreNodes) {
  const topo::Machine machine(topo::cori(4), 128);
  const topo::MachineTopology mt(machine);
  EXPECT_EQ(mt.blocks(), 4);
  EXPECT_GT(mt.min_cross_block_alpha(), 0);
  const topo::ShardMap map = topo::make_shard_map(mt, 4);
  expect_valid_map(map, mt, 4);
  for (Rank r = 0; r < 128; ++r) {
    EXPECT_EQ(map.shard_of[static_cast<std::size_t>(r)], r / 32);
  }
}

// ---------------------------------------------------------------------------
// Engine determinism: byte-identical artefacts for any shard count.
// ---------------------------------------------------------------------------

struct ShardedRun {
  runtime::RunResult result;
  std::string trace;
  std::string csv;
  std::uint64_t state_bytes = 0;  ///< deterministic gauge
  std::uint64_t peak_bytes = 0;   ///< budget figure (not shard-stable)
};

/// Fig10-style pipelined ADAPT bcast over a Cori-like machine (32 ranks per
/// node). Null payloads unless `real_payload` — the cost model and schedule
/// are payload-independent, and 65k real buffers would swamp the test.
ShardedRun run_sharded_bcast(int nranks, int shards, Bytes msg, Bytes seg,
                             bool real_payload,
                             const topo::ProcTopology* topology = nullptr) {
  const topo::Machine machine(topo::cori(std::max(1, nranks / 32)), nranks);
  const mpi::Comm world = mpi::Comm::world(nranks);
  const coll::Tree tree = coll::build_topo_tree(machine, world, 0);

  runtime::ShardedEngineOptions options;
  options.shards = shards;
  options.recorder = std::make_shared<obs::Recorder>();
  options.topology = topology;
  runtime::ShardedEngine engine(machine, options);

  std::vector<mpi::Payload> buffers;
  if (real_payload) {
    buffers.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      buffers.push_back(mpi::Payload::real(msg));
      mpi::MutView view = buffers.back().view();
      for (Bytes i = 0; i < msg; i += 61) {
        view.data[i] = static_cast<std::byte>((r * 131 + i * 7) & 0xff);
      }
    }
  }

  const coll::CollOpts opts{.segment_size = seg};
  auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    mpi::MutView buf = real_payload
                           ? buffers[static_cast<std::size_t>(ctx.rank())].view()
                           : mpi::MutView{nullptr, msg};
    co_await coll::bcast(ctx, world, buf, 0, tree, coll::Style::kAdapt, opts);
  };

  ShardedRun out;
  out.result = engine.run(program);
  out.state_bytes = engine.rank_state_bytes();
  out.peak_bytes = engine.rank_state_peak_bytes();
  {
    std::ostringstream os;
    obs::write_trace_json(*options.recorder, os);
    out.trace = os.str();
  }
  {
    std::ostringstream os;
    obs::write_metrics_csv(*options.recorder, os);
    out.csv = os.str();
  }

  if (real_payload) {
    // Every rank must hold the root's pattern after the bcast.
    for (int r = 0; r < nranks; ++r) {
      const mpi::MutView view = buffers[static_cast<std::size_t>(r)].view();
      for (Bytes i = 0; i < msg; i += 61) {
        const auto want = static_cast<std::byte>((i * 7) & 0xff);
        if (view.data[i] != want) {
          ADD_FAILURE() << "payload mismatch at rank " << r << " byte " << i
                        << " under shards=" << shards;
          return out;
        }
      }
    }
  }
  return out;
}

TEST(ShardedEngine, SmallBcastPayloadCorrectAcrossShards) {
  for (const int shards : {1, 2}) {
    const ShardedRun run =
        run_sharded_bcast(64, shards, kib(64), kib(16), /*real_payload=*/true);
    EXPECT_GT(run.result.total_time, 0) << "shards=" << shards;
  }
}

TEST(ShardedEngine, TraceMetricsAndGaugeInvariantToShardCount) {
  const ShardedRun base =
      run_sharded_bcast(4096, 1, kib(256), kib(64), /*real_payload=*/false);
  ASSERT_GT(base.result.total_time, 0);
  ASSERT_FALSE(base.trace.empty());
  EXPECT_NE(base.csv.find("sim.rank_state_bytes"), std::string::npos)
      << "gauge missing from metrics export";

  for (const int shards : {2, 4, 8}) {
    const ShardedRun run =
        run_sharded_bcast(4096, shards, kib(256), kib(64), false);
    EXPECT_EQ(run.result.total_time, base.result.total_time)
        << "shards=" << shards;
    EXPECT_EQ(run.result.rank_finish, base.result.rank_finish)
        << "shards=" << shards;
    EXPECT_EQ(verify::fnv1a64(run.trace), verify::fnv1a64(base.trace))
        << "trace diverged at shards=" << shards;
    EXPECT_EQ(run.trace, base.trace) << "trace bytes at shards=" << shards;
    EXPECT_EQ(run.csv, base.csv) << "metrics bytes at shards=" << shards;
    EXPECT_EQ(run.state_bytes, base.state_bytes)
        << "rank-state gauge at shards=" << shards;
  }
}

TEST(ShardedEngine, DragonflyTopologyDeterminism) {
  // Procedural topology as the locality oracle: 4 groups of 16 ranks, so the
  // mapper has real blocks to deal and the lookahead comes from the dragonfly
  // cross-group alpha rather than the machine's inter-node lane.
  topo::Dragonfly df(4, 4, 4, {500, 0.0625}, {300, 0.25}, {1100, 0.5});
  ASSERT_EQ(df.nranks(), 64);
  const ShardedRun base =
      run_sharded_bcast(64, 1, kib(128), kib(32), /*real_payload=*/true, &df);
  for (const int shards : {2, 4}) {
    const ShardedRun run = run_sharded_bcast(64, shards, kib(128), kib(32),
                                             /*real_payload=*/true, &df);
    EXPECT_EQ(run.result.rank_finish, base.result.rank_finish)
        << "shards=" << shards;
    EXPECT_EQ(run.trace, base.trace) << "shards=" << shards;
    EXPECT_EQ(run.csv, base.csv) << "shards=" << shards;
  }
}

// Golden pins for the 4096-rank artefacts (captured at shards=1; the
// invariance test above proves every other shard count matches). Regenerate
// with tests/golden/README in mind: any intentional cost-model or export
// change moves these.
TEST(ShardedEngine, GoldenHashes4096) {
  const std::string path =
      std::string(ADAPT_TESTS_DIR) + "/golden/sharded_hashes.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::map<std::string, std::pair<std::string, std::size_t>> want;
  std::string name, hash;
  std::size_t size = 0;
  while (in >> name >> hash >> size) want[name] = {hash, size};
  ASSERT_EQ(want.size(), 2u) << "expected trace+metrics pins in " << path;

  const ShardedRun run =
      run_sharded_bcast(4096, 4, kib(256), kib(64), /*real_payload=*/false);
  const auto hex = [](std::uint64_t h) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
  };
  EXPECT_EQ(hex(verify::fnv1a64(run.trace)), want["bcast4096_trace"].first);
  EXPECT_EQ(run.trace.size(), want["bcast4096_trace"].second);
  EXPECT_EQ(hex(verify::fnv1a64(run.csv)), want["bcast4096_metrics"].first);
  EXPECT_EQ(run.csv.size(), want["bcast4096_metrics"].second);
}

// ---------------------------------------------------------------------------
// Memory budget: compact per-rank state at scale.
// ---------------------------------------------------------------------------

// Documented per-rank budget (DESIGN.md §14): peak resident rank state —
// live coroutine-frame high-water + matcher footprint + pool-cached blocks —
// divided by nranks must stay under this for the fig10-style bcast.
constexpr std::uint64_t kPerRankPeakBudget = 8 * 1024;

TEST(ShardedEngine, RankStateBudgetAt4096) {
  const ShardedRun run =
      run_sharded_bcast(4096, 1, kib(256), kib(64), /*real_payload=*/false);
  ASSERT_GT(run.peak_bytes, 0u);
  EXPECT_LE(run.peak_bytes / 4096, kPerRankPeakBudget)
      << "peak " << run.peak_bytes << " B total";
}

TEST(ShardedEngine, SixtyFourKRanksDeterministicWithinBudget) {
  // 65,536 ranks, one 64 KiB segment each: the scale acceptance case. Null
  // payloads keep the test about simulator state, not user buffers.
  const ShardedRun base =
      run_sharded_bcast(65536, 1, kib(64), kib(64), /*real_payload=*/false);
  ASSERT_GT(base.result.total_time, 0);
  EXPECT_LE(base.peak_bytes / 65536, kPerRankPeakBudget)
      << "peak " << base.peak_bytes << " B total at shards=1";

  const ShardedRun wide =
      run_sharded_bcast(65536, 8, kib(64), kib(64), /*real_payload=*/false);
  EXPECT_EQ(wide.result.total_time, base.result.total_time);
  EXPECT_EQ(verify::fnv1a64(wide.trace), verify::fnv1a64(base.trace));
  EXPECT_EQ(wide.csv, base.csv);
  EXPECT_EQ(wide.state_bytes, base.state_bytes);
  EXPECT_LE(wide.peak_bytes / 65536, kPerRankPeakBudget)
      << "peak " << wide.peak_bytes << " B total at shards=8";
}

// ---------------------------------------------------------------------------
// Conformance composition: --shards rows stay pinned, also under --jobs.
// ---------------------------------------------------------------------------

TEST(ShardedConformance, MatrixRowsStayPinnedUnderJobs) {
  std::vector<verify::CaseConfig> cases;
  {
    verify::CaseConfig c;
    c.collective = verify::Collective::kBcast;
    c.world = 16;
    c.bytes = 4096;
    c.segment = 1024;
    cases.push_back(c);
    c.collective = verify::Collective::kReduce;
    c.world = 9;  // non-power-of-two tree
    cases.push_back(c);
    c.collective = verify::Collective::kGather;
    c.world = 12;
    c.comm = verify::CommKind::kEven;
    cases.push_back(c);
    c.collective = verify::Collective::kAllgather;
    c.world = 8;
    c.comm = verify::CommKind::kWorld;
    cases.push_back(c);
  }

  verify::MatrixOptions options;
  options.sim_seeds = 2;
  options.thread_engine = false;
  options.shrink = false;
  options.sharded_shards = 2;

  const verify::Report serial = verify::run_matrix(cases, options);
  EXPECT_TRUE(serial.ok()) << serial.summary()
                           << (serial.failures.empty()
                                   ? ""
                                   : "\n  " + serial.failures[0].repro + "\n  " +
                                         serial.failures[0].detail);
  // stable + 2 perturbations + sharded@{1,2} per case.
  EXPECT_EQ(serial.cases, 4);
  EXPECT_EQ(serial.runs, 4 * 5);

  options.jobs = 4;
  const verify::Report parallel = verify::run_matrix(cases, options);
  EXPECT_EQ(parallel.cases, serial.cases);
  EXPECT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.summary(), serial.summary());
  ASSERT_EQ(parallel.failures.size(), serial.failures.size());
}

TEST(ShardedConformance, ReproRoundTripCarriesShards) {
  verify::CaseConfig config;
  config.collective = verify::Collective::kAllgather;
  config.world = 12;
  verify::RunSpec spec;
  spec.engine = verify::EngineKind::kSharded;
  spec.shards = 4;
  const std::string line = verify::repro_string(config, spec);
  EXPECT_NE(line.find("engine=sharded"), std::string::npos);
  EXPECT_NE(line.find("shards=4"), std::string::npos);

  verify::CaseConfig parsed_config;
  verify::RunSpec parsed_spec;
  verify::Fault parsed_fault = verify::Fault::kNone;
  ASSERT_TRUE(
      verify::parse_repro(line, &parsed_config, &parsed_spec, &parsed_fault));
  EXPECT_EQ(parsed_spec.engine, verify::EngineKind::kSharded);
  EXPECT_EQ(parsed_spec.shards, 4);
  EXPECT_EQ(verify::repro_string(parsed_config, parsed_spec, parsed_fault),
            line);
}

}  // namespace
}  // namespace adapt
