#include <gtest/gtest.h>

#include <sstream>

#include "src/support/error.hpp"
#include "src/support/json.hpp"
#include "src/support/rng.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"
#include "src/support/units.hpp"

namespace adapt {
namespace {

TEST(Units, TimeConstruction) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1000000);
  EXPECT_EQ(seconds(1), 1000000000);
  EXPECT_EQ(milliseconds(1.5), 1500000);
}

TEST(Units, SizeConstruction) {
  EXPECT_EQ(kib(1), 1024);
  EXPECT_EQ(mib(4), 4 * 1024 * 1024);
  EXPECT_EQ(gib(1), 1024LL * 1024 * 1024);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(kib(64)), "64.0KB");
  EXPECT_EQ(format_bytes(mib(4)), "4.00MB");
  EXPECT_EQ(format_bytes(gib(2)), "2.00GB");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(microseconds(12)), "12.0us");
  EXPECT_EQ(format_time(milliseconds(3.5)), "3.50ms");
  EXPECT_EQ(format_time(seconds(2)), "2.00s");
  EXPECT_EQ(format_time(-microseconds(12)), "-12.0us");
}

TEST(Units, Gbps) {
  // 1 GB moved in 1 s = 8 Gb/s.
  EXPECT_DOUBLE_EQ(gbps(1000000000, seconds(1)), 8.0);
  EXPECT_DOUBLE_EQ(gbps(mib(1), 0), 0.0);
}

TEST(Error, CheckThrowsWithContext) {
  try {
    ADAPT_CHECK(1 == 2) << "extra " << 42;
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("extra 42"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(ADAPT_CHECK(2 + 2 == 4) << "never evaluated");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng base(7);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  Rng s1_again = base.split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(Stats, RunningEmpty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, SamplesQuantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Stats, SamplesSingle) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumericRowFormatting) {
  Table t({"algo", "v"});
  t.add_row_numeric("x", {1.23456}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "algo,v\nx,1.23\n");
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_DOUBLE_EQ(parse_json("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\n\t")").as_string(), "a\"b\\c\n\t");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, ParsesNested) {
  const JsonValue v = parse_json(
      R"({"name": "t", "xs": [1, 2, 3], "sub": {"ok": true}, "n": null})");
  EXPECT_EQ(v.at("name").as_string(), "t");
  ASSERT_EQ(v.at("xs").as_array().size(), 3u);
  EXPECT_EQ(v.at("xs").as_array()[2].as_int(), 3);
  EXPECT_TRUE(v.at("sub").at("ok").as_bool());
  EXPECT_TRUE(v.at("n").is_null());
  EXPECT_TRUE(v.has("name"));
  EXPECT_FALSE(v.has("missing"));
}

TEST(Json, RoundTripsThroughQuote) {
  const std::string original = "weird \"chars\"\nand\ttabs \\ here";
  EXPECT_EQ(parse_json(json_quote(original)).as_string(), original);
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1,]"), Error);
  EXPECT_THROW(parse_json("{\"a\": 1,}"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
  EXPECT_THROW(parse_json("nul"), Error);
  EXPECT_THROW(parse_json("1 trailing"), Error);
  EXPECT_THROW(parse_json("{\"dup\" 1}"), Error);
}

TEST(Json, TypeMismatchThrows) {
  const JsonValue v = parse_json("[1]");
  EXPECT_THROW(v.as_object(), Error);
  EXPECT_THROW(v.as_string(), Error);
  EXPECT_THROW(v.at("k"), Error);
}

}  // namespace
}  // namespace adapt
