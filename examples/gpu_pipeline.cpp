// GPU pipeline demo (§4): broadcast and reduce over GPU-resident data on a
// simulated multi-GPU node cluster, showing the two ADAPT optimisations:
//   * the explicit CPU buffer at node leaders (§4.1) — NIC traffic, cache->
//     GPU flushes and GPU-peer copies ride different PCIe lanes;
//   * reduction offloaded to GPU streams (§4.2) — the CPU stays free and the
//     folds overlap with communication.
//
//   ./gpu_pipeline [--nodes 4] [--msg BYTES]
#include <iostream>
#include <string>

#include "src/bench/imb.hpp"
#include "src/gpu/gpu_coll.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"
#include "src/topo/presets.hpp"

using namespace adapt;

int main(int argc, char** argv) {
  int nodes = 4;
  Bytes msg = mib(16);
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nodes") nodes = std::atoi(argv[i + 1]);
    if (arg == "--msg") msg = std::atoll(argv[i + 1]);
  }

  topo::Machine machine(topo::psg(nodes), nodes * 4,
                        topo::PlacementPolicy::kByGpu);
  const mpi::Comm world = mpi::Comm::world(machine.nranks());
  std::cout << "PSG-like cluster: " << nodes << " nodes x 4 GPUs, "
            << format_bytes(msg) << " GPU-resident messages\n\n";

  Table table({"library", "bcast(ms)", "reduce(ms)"});
  for (const std::string& name : gpu::gpu_libraries()) {
    auto lib = gpu::make_gpu_library(name, machine);
    double results[2];
    for (int which = 0; which < 2; ++which) {
      runtime::SimEngineOptions options;
      options.gpu = lib->gpu_config();
      runtime::SimEngine engine(machine, options);
      mpi::MutView buffer{nullptr, msg};
      auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
        if (which == 0) {
          co_await lib->bcast(ctx, world, buffer, 0);
        } else {
          co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                               mpi::Datatype::kFloat, 0);
        }
      };
      results[which] =
          bench::measure(engine, world, fn, {.warmup = 1, .iterations = 3})
              .avg_ms();
    }
    char b[32], r[32];
    std::snprintf(b, sizeof b, "%.3f", results[0]);
    std::snprintf(r, sizeof r, "%.3f", results[1]);
    table.add_row({name, b, r});
  }
  table.print(std::cout);
  std::cout << "\nompi-adapt-gpu sources NIC traffic from the host cache, "
               "flushes to GPUs on\nstreams and reduces on the device — the "
               "three transfers use different PCIe\nlanes and overlap "
               "(Fig. 6c), while the baselines bounce everything through\n"
               "the same root port direction (Fig. 6a/b).\n";
  return 0;
}
