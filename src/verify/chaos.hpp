// Chaos conformance: the differential harness pointed at a faulty fabric.
//
// A chaos run injects a seeded fault schedule (drops, corruption, delay,
// one link outage, optionally a rank death) into the SimEngine's fabric
// and enables the fault-tolerant reliability protocol, then asserts the
// job-wide contract: every live rank either finishes with byte-exact
// payloads or reports ONE consistent error code — no hangs (a virtual-time
// watchdog cascade stamps those kErrWatchdog, always a failure), no
// one-sided errors, no partial payload passed off as success.
//
// Everything here is deterministic: the fault schedule is a pure function
// of (ChaosClass, chaos_seed, communicator), so a chaos failure line from
// run_chaos_matrix replays exactly via `verify_conformance --repro`.
#pragma once

#include "src/mpi/reliable.hpp"
#include "src/net/fault.hpp"
#include "src/verify/conformance.hpp"

namespace adapt::verify {

/// Derives the deterministic fault schedule for one chaos run: drop in
/// [5%, 25%], corruption in [0, 10%], extra delay in [0, 20µs], one pair
/// outage of up to 10ms among `members`, and — for kKill — one permanent
/// death of a member within the first millisecond. kOff returns the
/// disabled plan.
net::FaultPlan make_chaos_plan(ChaosClass chaos, std::uint64_t seed,
                               const std::vector<Rank>& members, int world);

/// The reliability protocol settings chaos runs use: timeouts tight enough
/// that retry exhaustion (max_retries full backoff rounds) lands well
/// before the local-detection watchdog.
mpi::ReliabilityConfig chaos_reliability();

struct ChaosOptions {
  int soft_seeds = 6;   ///< fault schedules per case, drop/corrupt/outage
  int kill_seeds = 4;   ///< fault schedules per case with a rank death
  /// Also cross every fault schedule with one perturbed event schedule —
  /// faults are schedule-independent by construction, so the same plan must
  /// classify identically under jitter.
  bool perturb = true;
  bool shrink = true;
  Fault fault = Fault::kNone;  ///< kNoRetransmit = classifier self-test
  /// Watchdog cascade stamped onto every generated RunSpec (virtual time):
  /// local detection → quiesce → kErrWatchdog bomb. The defaults suit
  /// fail-stop runs; recovery suites raise them to leave room for the
  /// revoke/agree/shrink/retry cascade. Must be strictly increasing.
  TimeNs wd_detect = milliseconds(200);
  TimeNs wd_quiesce = milliseconds(300);
  TimeNs wd_bomb = milliseconds(400);
  int jobs = 1;  ///< case-level parallelism; see MatrixOptions::jobs
  std::function<void(const std::string&)> log;
  std::function<void(const std::string&)> on_run;  ///< see MatrixOptions
  std::string trace_dir;  ///< trace failures here; see MatrixOptions
};

/// The case subset chaos runs cover: every collective family, every style,
/// eager and rendezvous sizes, on a world small enough to keep seeded
/// fault runs fast.
std::vector<CaseConfig> chaos_matrix();

/// Runs every case under soft_seeds + kill_seeds fault schedules (plus the
/// perturbed cross when enabled), classifying each run with run_case's
/// chaos rules. Failures carry replayable repro lines and are shrunk.
Report run_chaos_matrix(const std::vector<CaseConfig>& cases,
                        const ChaosOptions& options);

}  // namespace adapt::verify
