#include "src/mpi/datatype.hpp"

#include "src/support/error.hpp"

namespace adapt::mpi {

Bytes size_of(Datatype dtype) {
  switch (dtype) {
    case Datatype::kUint8: return 1;
    case Datatype::kInt32: return 4;
    case Datatype::kInt64: return 8;
    case Datatype::kFloat: return 4;
    case Datatype::kDouble: return 8;
  }
  ADAPT_UNREACHABLE("bad datatype");
}

const char* datatype_name(Datatype dtype) {
  switch (dtype) {
    case Datatype::kUint8: return "uint8";
    case Datatype::kInt32: return "int32";
    case Datatype::kInt64: return "int64";
    case Datatype::kFloat: return "float";
    case Datatype::kDouble: return "double";
  }
  return "?";
}

}  // namespace adapt::mpi
