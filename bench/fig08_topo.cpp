// Figure 8: topology-aware broadcast and reduce vs message size, comparing
// ADAPT against every topology-aware algorithm variant of Intel MPI plus the
// Open MPI default module equipped with ADAPT's topo tree
// ("OMPI-default-topo", which isolates the Waitall penalty: same tree, ~20%
// slower — §5.1.2).
//
//   fig08_topo [--cluster cori|stampede2|both] [--iters N] [--json [FILE]]
#include <iostream>

#include "src/bench/cli.hpp"
#include "src/bench/imb.hpp"
#include "src/bench/report.hpp"
#include "src/coll/library.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/table.hpp"

namespace {

using namespace adapt;

void run_cluster(const std::string& cluster, int nodes, int ranks, int iters,
                 bench::JsonReport& report) {
  const auto setup = bench::make_cluster(cluster, nodes, ranks);
  const mpi::Comm world = mpi::Comm::world(setup.ranks);
  const std::vector<Bytes> sizes = {kib(64),  kib(128), kib(256), kib(512),
                                    mib(1),   mib(2),   mib(4)};
  std::vector<std::string> header = {"algorithm"};
  for (Bytes s : sizes) header.push_back(format_bytes(s));

  for (const char* op : {"Broadcast", "Reduce"}) {
    const bool is_bcast = std::string(op) == "Broadcast";
    std::cout << "Performance of Topology-aware " << op
              << " varies by MSG size on " << setup.ranks << " cores ("
              << cluster << "), time in ms\n";
    std::vector<std::string> libs = is_bcast
                                        ? coll::intel_topo_bcast_variants()
                                        : coll::intel_topo_reduce_variants();
    libs.push_back("ompi-default-topo");
    libs.push_back("ompi-adapt");
    Table table(header);
    for (const std::string& name : libs) {
      auto lib = coll::make_library(name, setup.machine);
      std::vector<double> row;
      for (Bytes msg : sizes) {
        runtime::SimEngine engine(setup.machine);
        mpi::MutView buffer{nullptr, msg};
        auto fn = [&](runtime::Context& ctx, int) -> sim::Task<> {
          if (is_bcast) {
            co_await lib->bcast(ctx, world, buffer, 0);
          } else {
            co_await lib->reduce(ctx, world, buffer, mpi::ReduceOp::kSum,
                                 mpi::Datatype::kFloat, 0);
          }
        };
        row.push_back(bench::measure(engine, world, fn,
                                     {.warmup = 1, .iterations = iters})
                          .avg_ms());
      }
      table.add_row_numeric(name, row);
    }
    table.print(std::cout);
    std::cout << "\n";
    report.add_table(std::string("Topology-aware ") + op + " time (ms) on " +
                         cluster,
                     table);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Cli cli(argc, argv);
  const std::string which = cli.get("cluster", "both");
  const int iters = static_cast<int>(cli.get_int("iters", 2));
  std::cout << "== Figure 8: topology-aware broadcast/reduce vs message size "
               "==\n\n";
  bench::JsonReport report("fig08_topo");
  report.set_meta("cluster", which);
  report.set_meta("iters", iters);
  if (which == "cori" || which == "both") {
    run_cluster("cori", static_cast<int>(cli.get_int("nodes", 32)),
                static_cast<int>(cli.get_int("ranks", 1024)), iters, report);
  }
  if (which == "stampede2" || which == "both") {
    run_cluster("stampede2", static_cast<int>(cli.get_int("nodes", 32)),
                static_cast<int>(cli.get_int("ranks", 1536)), iters, report);
  }
  return bench::emit_json(cli, report) ? 0 : 1;
}
