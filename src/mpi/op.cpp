#include "src/mpi/op.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>

#include "src/support/error.hpp"

namespace adapt::mpi {

const char* op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kProd: return "prod";
    case ReduceOp::kMax: return "max";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kBand: return "band";
    case ReduceOp::kBor: return "bor";
  }
  return "?";
}

namespace {

template <typename T>
void fold(ReduceOp op, std::byte* dst_raw, const std::byte* src_raw,
          Bytes bytes) {
  const std::size_t n = static_cast<std::size_t>(bytes) / sizeof(T);
  T* dst = reinterpret_cast<T*>(dst_raw);
  const T* src = reinterpret_cast<const T*>(src_raw);
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<T>(dst[i] + src[i]);
      return;
    case ReduceOp::kProd:
      for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<T>(dst[i] * src[i]);
      return;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
      return;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::min(dst[i], src[i]);
      return;
    case ReduceOp::kBand:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<T>(dst[i] & src[i]);
        return;
      }
      break;
    case ReduceOp::kBor:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<T>(dst[i] | src[i]);
        return;
      }
      break;
  }
  throw Error(std::string("op ") + op_name(op) +
              " is not defined for floating-point datatypes");
}

}  // namespace

void apply(ReduceOp op, Datatype dtype, std::byte* dst, const std::byte* src,
           Bytes bytes) {
  ADAPT_CHECK(bytes >= 0);
  ADAPT_CHECK(bytes % size_of(dtype) == 0)
      << "bytes=" << bytes << " not a multiple of " << datatype_name(dtype);
  switch (dtype) {
    case Datatype::kUint8: fold<std::uint8_t>(op, dst, src, bytes); return;
    case Datatype::kInt32: fold<std::int32_t>(op, dst, src, bytes); return;
    case Datatype::kInt64: fold<std::int64_t>(op, dst, src, bytes); return;
    case Datatype::kFloat: fold<float>(op, dst, src, bytes); return;
    case Datatype::kDouble: fold<double>(op, dst, src, bytes); return;
  }
  ADAPT_UNREACHABLE("bad datatype");
}

}  // namespace adapt::mpi
