// Dissemination barrier (Hensgen/Finkel/Manber): ceil(log2 P) rounds of
// zero-byte exchanges. Used by the IMB-style harness to separate iterations.
#include "src/coll/detail.hpp"
#include "src/support/error.hpp"

namespace adapt::coll {

sim::Task<> barrier(runtime::Context& ctx, const mpi::Comm& comm) {
  const int n = comm.size();
  if (n == 1) co_return;
  const Rank me = comm.local_of(ctx.rank());
  ADAPT_CHECK(me != kAnyRank);

  int rounds = 0;
  for (int span = 1; span < n; span *= 2) ++rounds;
  const Tag base_tag = ctx.alloc_tags(rounds);
  detail::CollSpan coll_span(ctx, "barrier", nullptr, 0);

  int round = 0;
  for (int span = 1; span < n; span *= 2, ++round) {
    const Rank to = comm.global((me + span) % n);
    const Rank from = comm.global((me - span % n + n) % n);
    auto send = ctx.isend(to, base_tag + round, mpi::ConstView{});
    auto recv = ctx.irecv(from, base_tag + round, mpi::MutView{});
    co_await mpi::wait(recv);
    co_await mpi::wait(send);
  }
}

}  // namespace adapt::coll
