// Persistent-collective machines: ADAPT's event-driven pipelines, replayed
// from a cached plan with zero steady-state allocation (see persistent.hpp).
#include "src/coll/persistent.hpp"

#include <algorithm>

#include "src/coll/detail.hpp"
#include "src/support/buffer_pool.hpp"
#include "src/support/error.hpp"
#include "src/tune/tuner.hpp"

namespace adapt::coll {

namespace {

/// Round-robin tag blocks per handle: enough that a straggler frame from a
/// failed round k can never match a receive of round k+block (blocks cycle
/// long after any fault-injected retransmit window closed).
constexpr int kTagRounds = 4;

constexpr std::uint64_t pack3(std::size_t c, int s, int window) {
  return (static_cast<std::uint64_t>(c) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)) << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint8_t>(window));
}
constexpr std::size_t unpack_c(std::uint64_t v) {
  return static_cast<std::size_t>(v >> 40);
}
constexpr int unpack_s(std::uint64_t v) {
  return static_cast<int>((v >> 8) & 0xffffffffu);
}
constexpr int unpack_w(std::uint64_t v) {
  return static_cast<int>(v & 0xffu);
}

int ceil_log2(int n) {
  int rounds = 0;
  for (int span = 1; span < n; span *= 2) ++rounds;
  return rounds;
}

const char* kind_name(PersistentOp::Kind kind) {
  switch (kind) {
    case PersistentOp::Kind::kBcast: return "bcast";
    case PersistentOp::Kind::kReduce: return "reduce";
    case PersistentOp::Kind::kAllreduce: return "allreduce";
    case PersistentOp::Kind::kBarrier: return "barrier";
  }
  return "?";
}

tune::PlanOp plan_op_of(PersistentOp::Kind kind) {
  switch (kind) {
    case PersistentOp::Kind::kBcast: return tune::PlanOp::kBcast;
    case PersistentOp::Kind::kReduce: return tune::PlanOp::kReduce;
    case PersistentOp::Kind::kAllreduce: return tune::PlanOp::kAllreduce;
    case PersistentOp::Kind::kBarrier: return tune::PlanOp::kBarrier;
  }
  return tune::PlanOp::kBcast;
}

}  // namespace

// ------------------------------------------------------------------- init ---

void PersistentOp::init_common(runtime::Context& ctx, const mpi::Comm& comm,
                               Kind kind, Bytes bytes, Rank root,
                               const PersistentOpts& opts) {
  ADAPT_CHECK(comm.contains(ctx.rank()))
      << "rank " << ctx.rank() << " not a member of the communicator";
  ADAPT_CHECK(opts.partitions >= 0);
  ADAPT_CHECK(!opts.coll.gpu_host_cache && !opts.coll.gpu_reduce)
      << "persistent collectives are CPU-path only";
  ADAPT_CHECK(opts.coll.outstanding_sends >= 1);
  ADAPT_CHECK(opts.coll.outstanding_recvs >= 1);
  ctx_ = &ctx;
  comm_ = comm;
  kind_ = kind;
  opts_ = opts.coll;
  partitions_ = opts.partitions;

  // -- plan: cache lookup, tuner pin, or explicit tree --------------------
  const bool has_tree = kind != Kind::kBarrier;
  if (has_tree) {
    ADAPT_CHECK(root >= 0 && root < comm.size());
  }
  tune::PlanCache* cache = ctx.plan_cache();
  const tune::PlanKey key{plan_op_of(kind), comm.fingerprint(),
                          tune::Tuner::bucket(bytes), root};
  if (opts.tree != nullptr) {
    // Caller-supplied tree: build a private (uncached) plan around it.
    ADAPT_CHECK(has_tree) << "barrier takes no tree";
    ADAPT_CHECK(opts.tree->root == root)
        << "tree rooted at " << opts.tree->root << ", collective root "
        << root;
    tune::CachedPlan plan;
    plan.tree = *opts.tree;
    plan.segment = opts_.segment_size;
    plan.comm = comm.state();
    plan_ = std::make_shared<const tune::CachedPlan>(std::move(plan));
  } else {
    plan_ = cache ? cache->find(key) : nullptr;
    if (cache != nullptr) {
      // Plan-cache timeline event (the counters live in PlanCache itself);
      // arg is the size bucket so hit/miss streams line up across handles.
      if (obs::Recorder* rec = ctx.recorder()) {
        rec->instant(obs::rank_pid(ctx.rank()), obs::kTidMain,
                     obs::Cat::kCache, plan_ ? "plan_hit" : "plan_miss",
                     rec->now(), key.bucket);
      }
    }
    if (!plan_) {
      tune::CachedPlan plan;
      plan.comm = comm.state();
      if (tune::Tuner* tuner = ctx.tuner(); tuner != nullptr && has_tree) {
        // Pin the decision now: choose() also records it in the engine's
        // DecisionTable, so the table doubles as the persistent plan cache's
        // pricing layer.
        const tune::Op top = kind == Kind::kBcast ? tune::Op::kBcast
                                                  : tune::Op::kReduce;
        tune::Tuner::ChooseStats tstats;
        const tune::Decision d = tuner->choose(top, comm.size(), bytes,
                                               &tstats);
        if (obs::Recorder* rec = ctx.recorder()) {
          obs::MetricsRegistry& m = rec->metrics();
          m.counter(tstats.cache_hit ? "tuner.hits" : "tuner.misses") += 1;
          m.histogram("tuner.bucket").record(tune::Tuner::bucket(bytes));
          rec->instant(obs::rank_pid(ctx.rank()), obs::kTidMain,
                       obs::Cat::kTune, "tune " + tune::decision_label(d),
                       rec->now(), d.predicted);
        }
        plan.decision = d;
        plan.tuned = true;
        plan.tree = tune::decision_tree(ctx.machine(), comm, root, d);
        plan.segment = tune::decision_segment(d, bytes);
      } else if (has_tree) {
        // Untuned default: the paper's topology-aware chain configuration.
        plan.tree = tune::decision_tree(ctx.machine(), comm, root,
                                        tune::Decision{});
        plan.segment = opts_.segment_size;
      }
      plan_ = cache ? cache->insert(key, std::move(plan))
                    : std::make_shared<const tune::CachedPlan>(
                          std::move(plan));
    }
  }
  if (plan_->segment > 0) opts_.segment_size = plan_->segment;

  // -- resolve this rank's edges ------------------------------------------
  if (has_tree) {
    const Rank me = comm.local_of(ctx.rank());
    const Tree& tree = plan_->tree;
    ADAPT_CHECK(tree.size() == comm.size());
    edges_.me_local = me;
    edges_.is_root = me == tree.root;
    edges_.parent_global =
        edges_.is_root ? -1 : comm.global(tree.up(me));
    edges_.kids_global.clear();
    edges_.kids_global.reserve(tree.kids(me).size());
    for (const Rank kid : tree.kids(me))
      edges_.kids_global.push_back(comm.global(kid));
  }

  segs_ = Segmenter(bytes, opts_.segment_size);
  const int S = segs_.count();
  bar_rounds_ = kind == Kind::kBarrier ? ceil_log2(comm.size()) : 0;

  // -- tag blocks ----------------------------------------------------------
  switch (kind) {
    case Kind::kBcast:
    case Kind::kReduce: per_round_tags_ = S; break;
    case Kind::kAllreduce: per_round_tags_ = 2 * S; break;
    case Kind::kBarrier: per_round_tags_ = std::max(bar_rounds_, 1); break;
  }
  base_tag_ = ctx.alloc_tags(static_cast<Tag>(per_round_tags_) * kTagRounds);

  // -- pre-size every piece of round state ---------------------------------
  const std::size_t nkids = edges_.kids_global.size();
  part_ready_.assign(static_cast<std::size_t>(partitions_), 0);
  local_ready_.assign(static_cast<std::size_t>(S), 1);
  received_.assign(static_cast<std::size_t>(S), 0);
  next_send_.assign(nkids, 0);
  inflight_.assign(nkids, 0);
  if (kind == Kind::kReduce || kind == Kind::kAllreduce) {
    contributed_.assign(static_cast<std::size_t>(S), 0);
    next_recv_.assign(nkids, 0);
    ready_q_.assign(static_cast<std::size_t>(S), 0);
    pending_folds_.resize(static_cast<std::size_t>(S));
    for (auto& q : pending_folds_) {
      q.clear();
      q.reserve(nkids);
    }
    // Persistent handles own their fold scratch for life — no per-round
    // Payload churn at all.
    const std::size_t windows =
        nkids * static_cast<std::size_t>(opts_.outstanding_recvs);
    scratch_.clear();
    scratch_.reserve(windows);
    for (std::size_t i = 0; i < windows; ++i) {
      scratch_.push_back(mpi::Payload::scratch(ctx.pool(), opts_.segment_size,
                                               buffer_.synthetic()));
    }
  }

  // -- warm the engine pool for the round's eager footprint ----------------
  // In-flight eager copies: N per child edge plus N up plus M unexpected
  // staging slots. One reserve call at init keeps every steady-state
  // acquire a free-list hit.
  if (support::BufferPool* pool = ctx.pool();
      pool != nullptr && !buffer_.synthetic() && bytes > 0) {
    const int in_flight =
        static_cast<int>(nkids + 1) * opts_.outstanding_sends +
        opts_.outstanding_recvs;
    pool->reserve(std::min(opts_.segment_size, std::max<Bytes>(bytes, 1)),
                  in_flight);
  }
}

PersistentOp::~PersistentOp() {
  // Destroying a handle mid-round would leave callbacks pointing at freed
  // state; wait() first (its drain guarantee is what makes `this` captures
  // safe).
  ADAPT_CHECK(!in_flight_) << "PersistentOp destroyed with a round in flight";
}

// -------------------------------------------------------------- lifecycle ---

mpi::ErrCode PersistentOp::start() {
  if (in_flight_) return mpi::ErrCode::kErrPending;
  if (!comm_.alive()) {
    // Either way no new round may start, but the codes differ: a freed
    // communicator is a programming error (handle gone for good), a revoked
    // one is the recovery layer saying "shrink and re-init" — recoverable.
    // Both drop any cached plans keyed by it, so the cache cannot serve this
    // plan to a future lookalike lookup.
    if (tune::PlanCache* cache = ctx_->plan_cache()) {
      cache->invalidate_comm(comm_.fingerprint());
      if (obs::Recorder* rec = ctx_->recorder()) {
        rec->instant(obs::rank_pid(ctx_->rank()), obs::kTidMain,
                     obs::Cat::kCache, "plan_invalidate", rec->now(),
                     static_cast<std::int64_t>(comm_.fingerprint()));
      }
    }
    return comm_.state()->freed ? mpi::ErrCode::kErrCommFreed
                                : mpi::ErrCode::kErrRevoked;
  }
  reset_round();
  in_flight_ = true;
  if (obs::Recorder* rec = ctx_->recorder()) {
    rec->instant(obs::rank_pid(ctx_->rank()), obs::kTidProgress,
                 obs::Cat::kTask, "pstart", rec->now(), rounds_completed_);
  }
  switch (kind_) {
    case Kind::kBcast:
      start_bcast();
      break;
    case Kind::kReduce:
      start_reduce();
      break;
    case Kind::kAllreduce:
      start_reduce();
      start_bcast();
      break;
    case Kind::kBarrier:
      start_barrier();
      break;
  }
  check_round_done();  // trivial rounds (1-rank comms) finish synchronously
  return mpi::ErrCode::kOk;
}

void PersistentOp::reset_round() {
  error_ = mpi::ErrCode::kOk;
  remaining_ = 0;
  outstanding_ = 0;
  next_recv_post_ = 0;
  inflight_up_ = 0;
  ready_head_ = ready_tail_ = 0;
  std::fill(part_ready_.begin(), part_ready_.end(), char{0});
  std::fill(local_ready_.begin(), local_ready_.end(),
            partitions_ > 0 ? char{0} : char{1});
  std::fill(next_send_.begin(), next_send_.end(), 0);
  std::fill(inflight_.begin(), inflight_.end(), 0);
  std::fill(contributed_.begin(), contributed_.end(), 0);
  std::fill(next_recv_.begin(), next_recv_.end(), 0);
  for (auto& q : pending_folds_) q.clear();
  const bool sender_gated = partitions_ > 0;
  const char root_ready = bcast_root() && !sender_gated ? 1 : 0;
  std::fill(received_.begin(), received_.end(),
            kind_ == Kind::kAllreduce ? char{0} : root_ready);
}

mpi::ErrCode PersistentOp::pready(int p) {
  if (partitions_ <= 0 || !in_flight_) return mpi::ErrCode::kErrPartition;
  if (p < 0 || p >= partitions_) return mpi::ErrCode::kErrPartition;
  if (part_ready_[static_cast<std::size_t>(p)])
    return mpi::ErrCode::kErrPartition;  // duplicate pready
  part_ready_[static_cast<std::size_t>(p)] = 1;
  if (error_ != mpi::ErrCode::kOk) return mpi::ErrCode::kOk;  // round dying
  // Partition p covers the contiguous segment range [p*S/P, (p+1)*S/P).
  const int S = segs_.count();
  const int first = static_cast<int>(
      (static_cast<std::int64_t>(p) * S) / partitions_);
  const int end = static_cast<int>(
      (static_cast<std::int64_t>(p + 1) * S) / partitions_);
  for (int s = first; s < end; ++s)
    local_ready_[static_cast<std::size_t>(s)] = 1;
  switch (kind_) {
    case Kind::kBcast:
      if (edges_.is_root) {
        for (int s = first; s < end; ++s)
          received_[static_cast<std::size_t>(s)] = 1;
        for (std::size_t c = 0; c < edges_.kids_global.size(); ++c)
          pump_child(c);
      }
      break;
    case Kind::kReduce:
    case Kind::kAllreduce:
      for (int s = first; s < end; ++s) {
        if (edges_.kids_global.empty()) {
          reduce_segment_ready(s);
        } else {
          // Replay folds that arrived before the local data was ready.
          auto& q = pending_folds_[static_cast<std::size_t>(s)];
          for (const std::uint64_t packed : q)
            schedule_fold(unpack_c(packed), s, unpack_w(packed));
          q.clear();
        }
      }
      break;
    case Kind::kBarrier:
      break;  // unreachable: barrier_init rejects partitions
  }
  check_round_done();
  return mpi::ErrCode::kOk;
}

mpi::ErrCode PersistentOp::parrived(int p, bool* flag) const {
  ADAPT_CHECK(flag != nullptr);
  *flag = false;
  if (partitions_ <= 0 || !in_flight_) return mpi::ErrCode::kErrPartition;
  if (p < 0 || p >= partitions_) return mpi::ErrCode::kErrPartition;
  if (error_ != mpi::ErrCode::kOk) return mpi::ErrCode::kOk;  // round dying
  const int S = segs_.count();
  const int first = static_cast<int>(
      (static_cast<std::int64_t>(p) * S) / partitions_);
  const int end = static_cast<int>(
      (static_cast<std::int64_t>(p + 1) * S) / partitions_);
  bool arrived = true;
  for (int s = first; s < end && arrived; ++s) {
    const auto si = static_cast<std::size_t>(s);
    switch (kind_) {
      case Kind::kBcast:
      case Kind::kAllreduce:
        // The bcast stage delivers the final bytes everywhere.
        arrived = received_[si] != 0;
        break;
      case Kind::kReduce:
        // contributed_ only advances once the local data is folded in, so
        // reaching the child count implies local_ready_ too.
        arrived = edges_.kids_global.empty()
                      ? local_ready_[si] != 0
                      : contributed_[si] ==
                            static_cast<int>(edges_.kids_global.size());
        break;
      case Kind::kBarrier:
        arrived = false;  // unreachable: barrier_init rejects partitions
        break;
    }
  }
  *flag = arrived;
  return mpi::ErrCode::kOk;
}

void PersistentOp::Awaiter::await_resume() const {
  if (op->error_ != mpi::ErrCode::kOk) {
    throw mpi::FaultError(op->error_, std::string("persistent ") +
                                          kind_name(op->kind_) + " failed");
  }
}

void PersistentOp::fail(mpi::ErrCode code) {
  if (error_ != mpi::ErrCode::kOk) return;  // first cause wins
  error_ = code;
}

void PersistentOp::cb_exit() {
  --outstanding_;
  check_round_done();
}

void PersistentOp::check_round_done() {
  if (!in_flight_) return;
  if (outstanding_ != 0) return;
  if (error_ == mpi::ErrCode::kOk && remaining_ != 0) return;
  // Success, or a failed round whose every posted callback has retired —
  // either way nothing references this handle any more.
  in_flight_ = false;
  ++rounds_completed_;
  if (obs::Recorder* rec = ctx_->recorder()) {
    rec->instant(obs::rank_pid(ctx_->rank()), obs::kTidProgress,
                 obs::Cat::kTask, "pdone", rec->now(),
                 static_cast<std::int64_t>(error_));
  }
  if (waiter_) {
    const std::coroutine_handle<> h = waiter_;
    waiter_ = nullptr;
    // Resume on the application thread, like the per-call collectives'
    // trailing compute(0) — the round itself ran on the progress context.
    ctx_->defer(0, [h] { h.resume(); });
  }
}

// ---------------------------------------------------------------- helpers ---

Tag PersistentOp::round_tag(int block_offset, int s) const {
  const int block = rounds_completed_ % kTagRounds;
  return base_tag_ + static_cast<Tag>(block) * per_round_tags_ +
         block_offset + s;
}

mpi::MutView PersistentOp::piece(int s) {
  return buffer_.slice(segs_.offset(s), segs_.length(s));
}

mpi::MutView PersistentOp::scratch_view(std::size_t c, int window,
                                        Bytes len) {
  return scratch_[c * static_cast<std::size_t>(opts_.outstanding_recvs) +
                  static_cast<std::size_t>(window)]
      .view()
      .slice(0, len);
}

bool PersistentOp::bcast_root() const {
  // For allreduce the bcast stage is gated on the reduce stage instead of
  // starting "received" (handled in reset_round).
  return edges_.is_root;
}

// ---------------------------------------------------------------- bcast -----

void PersistentOp::start_bcast() {
  const int S = segs_.count();
  const int bcast_recv = edges_.is_root ? 0 : S;
  const int bcast_send = static_cast<int>(edges_.kids_global.size()) * S;
  remaining_ += bcast_recv + bcast_send;
  if (!edges_.is_root) {
    const int prepost = std::min(S, opts_.outstanding_recvs);
    for (int i = 0; i < prepost; ++i) post_next_bcast_recv();
  } else {
    for (std::size_t c = 0; c < edges_.kids_global.size(); ++c)
      pump_child(c);
  }
}

void PersistentOp::post_next_bcast_recv() {
  if (error_ != mpi::ErrCode::kOk) return;
  if (next_recv_post_ >= segs_.count()) return;
  const int s = next_recv_post_++;
  const int block_offset = kind_ == Kind::kAllreduce ? segs_.count() : 0;
  ++outstanding_;
  auto req = ctx_->irecv(edges_.parent_global, round_tag(block_offset, s),
                         piece(s));
  req->set_completion_cb(
      [this, packed = pack3(0, s, 0)](mpi::Request& r) {
        if (r.failed()) {
          fail(r.error());
        } else {
          on_bcast_recv(unpack_s(packed));
        }
        cb_exit();
      });
}

void PersistentOp::on_bcast_recv(int s) {
  if (error_ != mpi::ErrCode::kOk) return;
  detail::segment_event(*ctx_, "seg_recv", s);
  received_[static_cast<std::size_t>(s)] = 1;
  --remaining_;
  post_next_bcast_recv();
  for (std::size_t c = 0; c < edges_.kids_global.size(); ++c) pump_child(c);
}

void PersistentOp::pump_child(std::size_t c) {
  const int block_offset = kind_ == Kind::kAllreduce ? segs_.count() : 0;
  while (error_ == mpi::ErrCode::kOk &&
         inflight_[c] < opts_.outstanding_sends &&
         next_send_[c] < segs_.count() &&
         received_[static_cast<std::size_t>(next_send_[c])] != 0) {
    const int s = next_send_[c]++;
    ++inflight_[c];
    ++outstanding_;
    detail::segment_event(*ctx_, "seg_send", s);
    auto req = ctx_->isend(
        edges_.kids_global[c], round_tag(block_offset, s),
        piece(s).as_const(),
        opts_.spaces(ctx_->rank(), edges_.kids_global[c]));
    req->set_completion_cb(
        [this, packed = pack3(c, 0, 0)](mpi::Request& r) {
          if (r.failed()) {
            fail(r.error());
          } else {
            const std::size_t child = unpack_c(packed);
            --inflight_[child];
            --remaining_;
            pump_child(child);
          }
          cb_exit();
        });
  }
}

// ---------------------------------------------------------------- reduce ----

void PersistentOp::start_reduce() {
  const int S = segs_.count();
  remaining_ += S;
  if (edges_.kids_global.empty()) {
    if (partitions_ <= 0) {
      for (int s = 0; s < S; ++s) reduce_segment_ready(s);
    }
    // Partitioned leaf: pready feeds segments in.
    return;
  }
  const int prepost = std::min(S, opts_.outstanding_recvs);
  for (std::size_t c = 0; c < edges_.kids_global.size(); ++c) {
    for (int window = 0; window < prepost; ++window)
      post_reduce_recv(c, window);
  }
}

void PersistentOp::post_reduce_recv(std::size_t c, int window) {
  if (error_ != mpi::ErrCode::kOk) return;
  if (next_recv_[c] >= segs_.count()) return;
  const int s = next_recv_[c]++;
  ++outstanding_;
  auto req = ctx_->irecv(edges_.kids_global[c], round_tag(0, s),
                         scratch_view(c, window, segs_.length(s)));
  req->set_completion_cb(
      [this, packed = pack3(c, s, window)](mpi::Request& r) {
        if (r.failed()) {
          fail(r.error());
        } else {
          on_reduce_recv(unpack_c(packed), unpack_s(packed),
                         unpack_w(packed));
        }
        cb_exit();
      });
}

void PersistentOp::on_reduce_recv(std::size_t c, int s, int window) {
  if (error_ != mpi::ErrCode::kOk) return;
  detail::segment_event(*ctx_, "seg_recv", s);
  schedule_fold(c, s, window);
}

void PersistentOp::schedule_fold(std::size_t c, int s, int window) {
  ++outstanding_;
  ctx_->defer_progress(
      detail::reduce_cost(*ctx_, opts_, segs_.length(s)),
      [this, packed = pack3(c, s, window)] {
        run_fold(unpack_c(packed), unpack_s(packed), unpack_w(packed));
        cb_exit();
      });
}

void PersistentOp::run_fold(std::size_t c, int s, int window) {
  if (error_ != mpi::ErrCode::kOk) return;
  if (!local_ready_[static_cast<std::size_t>(s)]) {
    // Child data beat this rank's own contribution (partitioned op):
    // park the fold until pready(partition of s) replays it.
    pending_folds_[static_cast<std::size_t>(s)].push_back(
        pack3(c, s, window));
    return;
  }
  const Bytes len = segs_.length(s);
  detail::apply_if_real(piece(s), scratch_view(c, window, len).as_const(),
                        rop_, dtype_, len);
  post_reduce_recv(c, window);
  if (++contributed_[static_cast<std::size_t>(s)] ==
      static_cast<int>(edges_.kids_global.size())) {
    reduce_segment_ready(s);
  }
}

void PersistentOp::reduce_segment_ready(int s) {
  detail::segment_event(*ctx_, "seg_ready", s);
  if (edges_.is_root) {
    --remaining_;
    if (kind_ == Kind::kAllreduce) {
      // Chain into the bcast stage: the fully-reduced segment is now this
      // root's broadcast payload.
      received_[static_cast<std::size_t>(s)] = 1;
      for (std::size_t c = 0; c < edges_.kids_global.size(); ++c)
        pump_child(c);
    }
    return;
  }
  ready_q_[static_cast<std::size_t>(ready_tail_++)] = s;
  pump_parent();
}

void PersistentOp::pump_parent() {
  while (error_ == mpi::ErrCode::kOk &&
         inflight_up_ < opts_.outstanding_sends &&
         ready_head_ < ready_tail_) {
    const int s = ready_q_[static_cast<std::size_t>(ready_head_++)];
    ++inflight_up_;
    ++outstanding_;
    detail::segment_event(*ctx_, "seg_send", s);
    auto req = ctx_->isend(edges_.parent_global, round_tag(0, s),
                           piece(s).as_const(),
                           opts_.spaces(ctx_->rank(), edges_.parent_global));
    req->set_completion_cb([this](mpi::Request& r) {
      if (r.failed()) {
        fail(r.error());
      } else {
        --inflight_up_;
        --remaining_;
        pump_parent();
      }
      cb_exit();
    });
  }
}

// ---------------------------------------------------------------- barrier ---

void PersistentOp::start_barrier() {
  const int n = comm_.size();
  if (n == 1) return;  // nothing to synchronise
  remaining_ += 2 * bar_rounds_;
  const Rank me = edges_.me_local;
  // Pre-post every round's receive (tags distinguish rounds), send round 0;
  // the recv of round k releases the send of round k+1 — the dissemination
  // dependency chain, replayed as callbacks.
  for (int k = 0; k < bar_rounds_; ++k) {
    const int span = 1 << k;
    const Rank from = comm_.global((me - span + n) % n);
    ++outstanding_;
    auto req = ctx_->irecv(from, round_tag(0, k), mpi::MutView{});
    req->set_completion_cb(
        [this, packed = pack3(0, k, 0)](mpi::Request& r) {
          if (r.failed()) {
            fail(r.error());
          } else {
            on_barrier_recv(unpack_s(packed));
          }
          cb_exit();
        });
  }
  on_barrier_recv(-1);  // "round -1 received": releases the round-0 send
}

void PersistentOp::on_barrier_recv(int round) {
  if (round >= 0) {
    if (error_ != mpi::ErrCode::kOk) return;
    --remaining_;
  }
  const int next = round + 1;
  if (next >= bar_rounds_ || error_ != mpi::ErrCode::kOk) return;
  const int n = comm_.size();
  const Rank me = edges_.me_local;
  const int span = 1 << next;
  const Rank to = comm_.global((me + span) % n);
  ++outstanding_;
  auto req = ctx_->isend(to, round_tag(0, next), mpi::ConstView{});
  req->set_completion_cb([this](mpi::Request& r) {
    if (r.failed()) {
      fail(r.error());
    } else {
      --remaining_;
    }
    cb_exit();
  });
}

// -------------------------------------------------------------- factories ---

PersistentOpPtr bcast_init(runtime::Context& ctx, const mpi::Comm& comm,
                           mpi::MutView buffer, Rank root,
                           const PersistentOpts& opts) {
  PersistentOpPtr op(new PersistentOp());
  op->buffer_ = buffer;
  op->init_common(ctx, comm, PersistentOp::Kind::kBcast, buffer.size, root,
                  opts);
  return op;
}

PersistentOpPtr reduce_init(runtime::Context& ctx, const mpi::Comm& comm,
                            mpi::MutView accum, mpi::ReduceOp rop,
                            mpi::Datatype dtype, Rank root,
                            const PersistentOpts& opts) {
  PersistentOpPtr op(new PersistentOp());
  op->buffer_ = accum;
  op->rop_ = rop;
  op->dtype_ = dtype;
  op->init_common(ctx, comm, PersistentOp::Kind::kReduce, accum.size, root,
                  opts);
  return op;
}

PersistentOpPtr allreduce_init(runtime::Context& ctx, const mpi::Comm& comm,
                               mpi::MutView accum, mpi::ReduceOp rop,
                               mpi::Datatype dtype,
                               const PersistentOpts& opts) {
  PersistentOpPtr op(new PersistentOp());
  op->buffer_ = accum;
  op->rop_ = rop;
  op->dtype_ = dtype;
  op->init_common(ctx, comm, PersistentOp::Kind::kAllreduce, accum.size,
                  /*root=*/0, opts);
  return op;
}

PersistentOpPtr barrier_init(runtime::Context& ctx, const mpi::Comm& comm,
                             const PersistentOpts& opts) {
  ADAPT_CHECK(opts.partitions == 0) << "barrier has no data to partition";
  ADAPT_CHECK(opts.tree == nullptr) << "barrier takes no tree";
  PersistentOpPtr op(new PersistentOp());
  op->init_common(ctx, comm, PersistentOp::Kind::kBarrier, 0, /*root=*/0,
                  opts);
  op->edges_.me_local = comm.local_of(ctx.rank());
  return op;
}

void free_comm(runtime::Context& ctx, const mpi::Comm& comm) {
  comm.free();
  if (tune::PlanCache* cache = ctx.plan_cache()) {
    cache->invalidate_comm(comm.fingerprint());
    if (obs::Recorder* rec = ctx.recorder()) {
      rec->instant(obs::rank_pid(ctx.rank()), obs::kTidMain, obs::Cat::kCache,
                   "plan_invalidate", rec->now(),
                   static_cast<std::int64_t>(comm.fingerprint()));
    }
  }
}

}  // namespace adapt::coll
