#include "src/tune/tuner.hpp"

#include <algorithm>
#include <sstream>

#include "src/coll/han.hpp"
#include "src/coll/topo_tree.hpp"
#include "src/support/error.hpp"
#include "src/support/json.hpp"

namespace adapt::tune {

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::kTopoChain: return "topo-chain";
    case Topology::kTopoKnomial: return "topo-knomial";
    case Topology::kBinomial: return "binomial";
    case Topology::kChain: return "chain";
    case Topology::kHan: return "han";
  }
  return "?";
}

bool topology_from_name(const std::string& name, Topology* out) {
  for (const Topology t : {Topology::kTopoChain, Topology::kTopoKnomial,
                           Topology::kBinomial, Topology::kChain,
                           Topology::kHan}) {
    if (name == topology_name(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------- DecisionTable ---

std::optional<Decision> DecisionTable::find(const TableKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void DecisionTable::insert(const TableKey& key, const Decision& decision) {
  map_[key] = decision;
}

std::string DecisionTable::dump_json() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"adapt-decision-table-v1\",\n  \"machine\": "
      << json_quote(machine_) << ",\n  \"decisions\": [";
  bool first = true;
  for (const auto& [key, d] : map_) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"op\": " << json_quote(op_name(key.op))
        << ", \"ranks\": " << key.ranks << ", \"bucket\": " << key.bucket
        << ", \"topology\": " << json_quote(topology_name(d.topology))
        << ", \"radix\": " << d.radix << ", \"segment\": " << d.segment
        << ", \"predicted\": " << d.predicted << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool DecisionTable::load_json(const std::string& text, std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error) *error = why;
    return false;
  };
  try {
    const JsonValue doc = parse_json(text);
    if (!doc.has("schema") ||
        doc.at("schema").as_string() != "adapt-decision-table-v1")
      return fail("not an adapt-decision-table-v1 document");
    const std::string recorded = doc.at("machine").as_string();
    if (recorded != machine_)
      return fail("decision table was tuned for a different machine:\n  table:   " +
                  recorded + "\n  current: " + machine_);
    std::map<TableKey, Decision> loaded;
    for (const JsonValue& entry : doc.at("decisions").as_array()) {
      TableKey key;
      if (!op_from_name(entry.at("op").as_string(), &key.op))
        return fail("unknown op \"" + entry.at("op").as_string() + "\"");
      key.ranks = static_cast<int>(entry.at("ranks").as_int());
      key.bucket = static_cast<int>(entry.at("bucket").as_int());
      Decision d;
      if (!topology_from_name(entry.at("topology").as_string(), &d.topology))
        return fail("unknown topology \"" + entry.at("topology").as_string() +
                    "\"");
      d.radix = static_cast<int>(entry.at("radix").as_int());
      d.segment = entry.at("segment").as_int();
      d.predicted = entry.at("predicted").as_int();
      loaded[key] = d;
    }
    map_ = std::move(loaded);
    hits_ = misses_ = 0;
    return true;
  } catch (const Error& e) {
    return fail(e.what());
  }
}

// ---------------------------------------------------------------- Tuner ---

Tuner::Tuner(const topo::Machine& machine, TunerOptions options)
    : machine_(machine),
      options_(std::move(options)),
      model_(machine),
      table_(machine.fingerprint()) {
  ADAPT_CHECK(!options_.segments.empty() || options_.whole_message)
      << "empty tuning grid";
}

int Tuner::bucket(Bytes bytes) {
  int b = 0;
  for (Bytes v = bytes; v > 1; v >>= 1) ++b;
  return b;
}

Bytes Tuner::bucket_bytes(int bucket) { return Bytes{1} << bucket; }

std::vector<Decision> Tuner::candidates(Op op, int ranks, Bytes bytes) const {
  ADAPT_CHECK(ranks >= 1 && ranks <= machine_.nranks())
      << "cannot tune a " << ranks << "-rank communicator on a "
      << machine_.nranks() << "-rank machine";
  const Bytes rep = bucket_bytes(bucket(bytes));
  std::vector<Bytes> segments = options_.segments;
  if (options_.whole_message) segments.push_back(0);

  std::vector<Decision> out;
  const auto price = [&](Decision d) {
    d.predicted = predict(op, ranks, d, rep);
    out.push_back(d);
  };
  // Two-level HAN candidates only exist on machines with a first-class SHM
  // channel, and only when the (dense-prefix) communicator spans more than
  // one node — a single-node comm's HAN tree degenerates to the flat shape.
  // Gating keeps the default grid byte-identical on every legacy machine.
  const bool han = machine_.spec().has_shm_channel() &&
                   ranks > machine_.spec().cores_per_node();
  for (const Bytes seg : segments) {
    price({Topology::kTopoChain, 4, seg, 0});
    for (const int radix : options_.radices)
      price({Topology::kTopoKnomial, radix, seg, 0});
    price({Topology::kBinomial, 4, seg, 0});
    if (han)
      for (const int radix : options_.radices)
        price({Topology::kHan, radix, seg, 0});
  }
  return out;
}

TimeNs Tuner::predict(Op op, int ranks, const Decision& decision,
                      Bytes bytes) const {
  const mpi::Comm comm = mpi::Comm::world(ranks);
  const coll::Tree tree = decision_tree(machine_, comm, /*root=*/0, decision);
  Workload work;
  work.op = op;
  work.style = options_.style;
  work.bytes = bytes;
  work.segment = decision_segment(decision, bytes);
  work.gamma_scale = options_.gamma_scale;
  return model_.predict(work, comm, tree);
}

Decision Tuner::choose(Op op, int ranks, Bytes bytes, ChooseStats* stats) {
  const TableKey key{op, ranks, bucket(bytes)};
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto cached = table_.find(key)) {
    if (stats != nullptr) *stats = ChooseStats{true, 0};
    return *cached;
  }
  const std::vector<Decision> grid = candidates(op, ranks, bytes);
  if (stats != nullptr) {
    *stats = ChooseStats{false, static_cast<int>(grid.size())};
  }
  const Decision best = *std::min_element(
      grid.begin(), grid.end(), [](const Decision& a, const Decision& b) {
        return a.predicted < b.predicted;  // grid order breaks ties
      });
  table_.insert(key, best);
  return best;
}

std::string Tuner::dump_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.dump_json();
}

bool Tuner::load_json(const std::string& text, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.load_json(text, error);
}

std::uint64_t Tuner::cache_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.hits();
}

std::uint64_t Tuner::cache_misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.misses();
}

int Tuner::table_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.size();
}

// ---------------------------------------------------------- application ---

coll::Tree decision_tree(const topo::Machine& machine, const mpi::Comm& comm,
                         Rank root, const Decision& decision) {
  switch (decision.topology) {
    case Topology::kTopoChain:
      return coll::build_topo_tree(machine, comm, root, coll::TopoTreeSpec{});
    case Topology::kTopoKnomial: {
      coll::TopoTreeSpec spec;
      spec.core_level = coll::TreeKind::kKNomial;
      spec.socket_level = coll::TreeKind::kKNomial;
      spec.node_level = coll::TreeKind::kKNomial;
      spec.radix = decision.radix;
      return coll::build_topo_tree(machine, comm, root, spec);
    }
    case Topology::kBinomial:
      return coll::build_tree(coll::TreeKind::kBinomial, comm.size(), root);
    case Topology::kChain:
      return coll::build_tree(coll::TreeKind::kChain, comm.size(), root);
    case Topology::kHan: {
      coll::HanSpec spec;
      spec.radix = decision.radix;
      return coll::build_han_tree(machine, comm, root, spec);
    }
  }
  ADAPT_UNREACHABLE("bad tuned topology");
}

Bytes decision_segment(const Decision& decision, Bytes message) {
  if (decision.segment == 0) return std::max<Bytes>(1, message);
  return decision.segment;
}

std::string decision_label(const Decision& decision) {
  std::ostringstream ss;
  ss << topology_name(decision.topology) << "/s" << decision.segment;
  return ss.str();
}

}  // namespace adapt::tune
