// Multi-communicator hierarchical collectives — the state-of-practice design
// the paper critiques in §3.1 (MVAPICH2/Intel "SHM-based" style): the world
// splits into a node-leader communicator plus one communicator per node, and
// the levels run SEQUENTIALLY — the intra-node phase of a broadcast cannot
// start until the leader received everything from the inter-node phase, so
// levels never overlap. ADAPT's single-communicator topo tree (§3.2) is the
// contrast.
#pragma once

#include "src/coll/coll.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::coll {

struct HierSpec {
  TreeKind inter_node = TreeKind::kBinomial;  ///< among node leaders
  TreeKind intra_node = TreeKind::kKNomial;   ///< within each node
  int radix = 4;
  Style style = Style::kNonblocking;
  CollOpts opts;
};

/// Hierarchical broadcast: inter-node phase over node leaders, then a fully
/// separate intra-node phase per node.
sim::Task<> hier_bcast(runtime::Context& ctx, const mpi::Comm& comm,
                       mpi::MutView buffer, Rank root,
                       const topo::Machine& machine, const HierSpec& spec);

/// Hierarchical reduce: intra-node phase to each node leader, then the
/// inter-node phase over leaders.
sim::Task<> hier_reduce(runtime::Context& ctx, const mpi::Comm& comm,
                        mpi::MutView accum, mpi::ReduceOp op,
                        mpi::Datatype dtype, Rank root,
                        const topo::Machine& machine, const HierSpec& spec);

}  // namespace adapt::coll
