#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "src/coll/hierarchical.hpp"
#include "src/coll/library.hpp"
#include "src/coll/moreops.hpp"
#include "src/coll/nonblocking.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"

namespace adapt::coll {
namespace {

using runtime::Context;
using runtime::SimEngine;

std::vector<std::byte> pattern(Bytes n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(static_cast<std::size_t>(n));
  for (auto& b : v) b = std::byte(rng.next_below(256));
  return v;
}

class ScatterGather : public testing::TestWithParam<int> {};

TEST_P(ScatterGather, ScatterDeliversBlocks) {
  const int n = GetParam();
  topo::Machine m(topo::cori(2), n);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(n);
  const Rank root = n / 3;
  const Bytes block = 96;
  const auto sendbuf = pattern(block * n, 11);
  std::vector<std::vector<std::byte>> out(
      static_cast<std::size_t>(n),
      std::vector<std::byte>(static_cast<std::size_t>(block)));

  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = out[static_cast<std::size_t>(ctx.rank())];
    co_await scatter(ctx, world,
                     mpi::ConstView{ctx.rank() == root ? sendbuf.data()
                                                       : nullptr,
                                    ctx.rank() == root ? block * n : 0},
                     mpi::MutView{mine.data(), block}, block, root);
  };
  engine.run(program);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(std::memcmp(out[static_cast<std::size_t>(r)].data(),
                          sendbuf.data() + r * block,
                          static_cast<std::size_t>(block)),
              0)
        << "rank " << r;
  }
}

TEST_P(ScatterGather, GatherCollectsBlocks) {
  const int n = GetParam();
  topo::Machine m(topo::cori(2), n);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(n);
  const Rank root = n - 1;
  const Bytes block = 64;
  std::vector<std::vector<std::byte>> in;
  in.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    in.push_back(pattern(block, 100 + static_cast<std::uint64_t>(r)));
  }
  std::vector<std::byte> recvbuf(static_cast<std::size_t>(block * n));

  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = in[static_cast<std::size_t>(ctx.rank())];
    co_await gather(ctx, world, mpi::ConstView{mine.data(), block},
                    mpi::MutView{ctx.rank() == root ? recvbuf.data() : nullptr,
                                 ctx.rank() == root ? block * n : 0},
                    block, root);
  };
  engine.run(program);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(std::memcmp(recvbuf.data() + r * block,
                          in[static_cast<std::size_t>(r)].data(),
                          static_cast<std::size_t>(block)),
              0)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScatterGather,
                         testing::Values(1, 2, 3, 4, 7, 16, 33));

class AllgatherTest
    : public testing::TestWithParam<std::pair<int, AllgatherAlgo>> {};

TEST_P(AllgatherTest, EveryRankGetsEveryBlock) {
  const auto [n, algo] = GetParam();
  topo::Machine m(topo::cori(2), n);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(n);
  const Bytes block = 80;
  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(n),
      std::vector<std::byte>(static_cast<std::size_t>(block * n)));
  std::vector<std::byte> expected(static_cast<std::size_t>(block * n));
  for (int r = 0; r < n; ++r) {
    const auto mine = pattern(block, 7 + static_cast<std::uint64_t>(r));
    std::memcpy(bufs[static_cast<std::size_t>(r)].data() + r * block,
                mine.data(), static_cast<std::size_t>(block));
    std::memcpy(expected.data() + r * block, mine.data(),
                static_cast<std::size_t>(block));
  }
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    co_await allgather(ctx, world, mpi::MutView{mine.data(), block * n},
                       block, algo);
  };
  engine.run(program);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].data(),
                          expected.data(), expected.size()),
              0)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgos, AllgatherTest,
    testing::Values(std::pair{2, AllgatherAlgo::kRing},
                    std::pair{5, AllgatherAlgo::kRing},
                    std::pair{16, AllgatherAlgo::kRing},
                    std::pair{2, AllgatherAlgo::kRecursiveDoubling},
                    std::pair{8, AllgatherAlgo::kRecursiveDoubling},
                    std::pair{32, AllgatherAlgo::kRecursiveDoubling},
                    // non-power-of-two falls back to ring
                    std::pair{6, AllgatherAlgo::kRecursiveDoubling}));

TEST(BcastScatterAllgather, MatchesTreeBcast) {
  for (int n : {4, 7, 16}) {
    for (AllgatherAlgo algo :
         {AllgatherAlgo::kRing, AllgatherAlgo::kRecursiveDoubling}) {
      topo::Machine m(topo::cori(2), n);
      SimEngine engine(m);
      const mpi::Comm world = mpi::Comm::world(n);
      const Rank root = 1 % n;
      const Bytes bytes = 1000;  // not divisible by n: ragged tail
      const auto golden = pattern(bytes, 3);
      std::vector<std::vector<std::byte>> bufs(
          static_cast<std::size_t>(n),
          std::vector<std::byte>(static_cast<std::size_t>(bytes)));
      bufs[static_cast<std::size_t>(root)] = golden;
      auto program = [&](Context& ctx) -> sim::Task<> {
        auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
        co_await bcast_scatter_allgather(
            ctx, world, mpi::MutView{mine.data(), bytes}, root, algo);
      };
      engine.run(program);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].data(),
                              golden.data(), golden.size()),
                  0)
            << "n=" << n << " rank " << r;
      }
    }
  }
}

TEST(Rabenseifner, MatchesSerialSum) {
  for (int n : {2, 3, 4, 6, 8, 13, 16}) {
    topo::Machine m(topo::cori(2), n);
    SimEngine engine(m);
    const mpi::Comm world = mpi::Comm::world(n);
    const Rank root = n / 2;
    const std::size_t elems = 250;
    Rng rng(19);
    std::vector<std::vector<std::int32_t>> contrib(
        static_cast<std::size_t>(n));
    std::vector<std::int32_t> expected(elems, 0);
    for (int r = 0; r < n; ++r) {
      auto& v = contrib[static_cast<std::size_t>(r)];
      v.resize(elems);
      for (auto& x : v) {
        x = static_cast<std::int32_t>(rng.next_in(-50, 50));
      }
      for (std::size_t i = 0; i < elems; ++i) expected[i] += v[i];
    }
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
      co_await reduce_rabenseifner(
          ctx, world,
          mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                       static_cast<Bytes>(elems * 4)},
          mpi::ReduceOp::kSum, mpi::Datatype::kInt32, root);
    };
    engine.run(program);
    EXPECT_EQ(contrib[static_cast<std::size_t>(root)], expected)
        << "n=" << n;
  }
}

TEST(Allreduce, EveryRankHasTheSum) {
  const int n = 12;
  topo::Machine m(topo::cori(2), n);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(n);
  std::vector<std::vector<std::int64_t>> contrib(
      static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    contrib[static_cast<std::size_t>(r)] = {r + 1, 2 * r, -r};
  }
  const Tree rt = binomial_tree(n, 0);
  const Tree bt = binomial_tree(n, 0);
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
    co_await allreduce(ctx, world,
                       mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                                    24},
                       mpi::ReduceOp::kSum, mpi::Datatype::kInt64, rt, bt,
                       Style::kAdapt, CollOpts{.segment_size = 8});
  };
  engine.run(program);
  const std::int64_t s1 = n * (n + 1) / 2;
  const std::int64_t s2 = n * (n - 1);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(contrib[static_cast<std::size_t>(r)][0], s1);
    EXPECT_EQ(contrib[static_cast<std::size_t>(r)][1], s2);
    EXPECT_EQ(contrib[static_cast<std::size_t>(r)][2], -s2 / 2);
  }
}


TEST(AllreduceRing, MatchesSerialSumAllSizes) {
  for (int n : {2, 3, 5, 8, 16}) {
    topo::Machine m(topo::cori(2), n);
    SimEngine engine(m);
    const mpi::Comm world = mpi::Comm::world(n);
    const std::size_t elems = 301;  // deliberately not divisible by n
    Rng rng(23);
    std::vector<std::vector<std::int32_t>> contrib(
        static_cast<std::size_t>(n));
    std::vector<std::int32_t> expected(elems, 0);
    for (int r = 0; r < n; ++r) {
      auto& v = contrib[static_cast<std::size_t>(r)];
      v.resize(elems);
      for (std::size_t i = 0; i < elems; ++i) {
        v[i] = static_cast<std::int32_t>(rng.next_in(-30, 30));
        expected[i] += v[i];
      }
    }
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
      co_await allreduce_ring(
          ctx, world,
          mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                       static_cast<Bytes>(elems * 4)},
          mpi::ReduceOp::kSum, mpi::Datatype::kInt32);
    };
    engine.run(program);
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(contrib[static_cast<std::size_t>(r)], expected)
          << "n=" << n << " rank " << r;
    }
  }
}

TEST(AllreduceRing, SingleRankNoop) {
  topo::Machine m(topo::cori(1), 1);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(1);
  std::vector<std::int32_t> v = {1, 2, 3};
  auto program = [&](Context& ctx) -> sim::Task<> {
    co_await allreduce_ring(ctx, world,
                            mpi::MutView{reinterpret_cast<std::byte*>(v.data()),
                                         12},
                            mpi::ReduceOp::kSum, mpi::Datatype::kInt32);
  };
  engine.run(program);
  EXPECT_EQ(v, (std::vector<std::int32_t>{1, 2, 3}));
}

TEST(Alltoall, PersonalisedExchange) {
  for (int n : {2, 4, 6, 8}) {  // both power-of-two and not
    topo::Machine m(topo::cori(2), n);
    SimEngine engine(m);
    const mpi::Comm world = mpi::Comm::world(n);
    const Bytes block = 32;
    // sendbuf of rank i, block j = pattern(i, j).
    auto cell = [&](int i, int j) { return std::byte((i * 31 + j * 7) % 251); };
    std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(n)),
        recv(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      send[static_cast<std::size_t>(i)].resize(
          static_cast<std::size_t>(block * n));
      recv[static_cast<std::size_t>(i)].assign(
          static_cast<std::size_t>(block * n), std::byte(0));
      for (int j = 0; j < n; ++j) {
        for (Bytes b = 0; b < block; ++b) {
          send[static_cast<std::size_t>(i)]
              [static_cast<std::size_t>(j * block + b)] = cell(i, j);
        }
      }
    }
    auto program = [&](Context& ctx) -> sim::Task<> {
      const auto me = static_cast<std::size_t>(ctx.rank());
      co_await alltoall(ctx, world,
                        mpi::ConstView{send[me].data(), block * n},
                        mpi::MutView{recv[me].data(), block * n}, block);
    };
    engine.run(program);
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        // Rank j's block i must be what rank i sent to j.
        EXPECT_EQ(recv[static_cast<std::size_t>(j)]
                      [static_cast<std::size_t>(i * block)],
                  cell(i, j))
            << "n=" << n << " i=" << i << " j=" << j;
      }
    }
  }
}


TEST(NonblockingColl, IbcastOverlapsComputeAndDeliversData) {
  topo::Machine m(topo::cori(2), 32);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(32);
  const Tree tree = binomial_tree(32, 0);
  const Bytes bytes = 4096;
  const auto golden = pattern(bytes, 9);
  std::vector<std::vector<std::byte>> bufs(
      32, std::vector<std::byte>(static_cast<std::size_t>(bytes)));
  bufs[0] = golden;
  std::vector<TimeNs> issue_latency(32, -1);
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    const TimeNs t0 = ctx.now();
    auto req = ibcast(ctx, world, mpi::MutView{mine.data(), bytes}, 0, tree,
                      CollOpts{.segment_size = 1024});
    issue_latency[static_cast<std::size_t>(ctx.rank())] = ctx.now() - t0;
    // Overlapped application compute while the collective progresses.
    co_await ctx.compute(microseconds(200));
    co_await req->wait(ctx);
  };
  engine.run(program);
  for (int r = 0; r < 32; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], golden) << "rank " << r;
    // Issuing is immediate -- the collective runs asynchronously.
    EXPECT_EQ(issue_latency[static_cast<std::size_t>(r)], 0) << "rank " << r;
  }
}

TEST(NonblockingColl, IreduceMatchesSerialSum) {
  topo::Machine m(topo::cori(1), 8);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(8);
  const Tree tree = chain_tree(8, 0);
  std::vector<std::vector<std::int32_t>> contrib(8);
  std::vector<std::int32_t> expected(128, 0);
  Rng rng(14);
  for (int r = 0; r < 8; ++r) {
    auto& v = contrib[static_cast<std::size_t>(r)];
    v.resize(128);
    for (std::size_t i = 0; i < 128; ++i) {
      v[i] = static_cast<std::int32_t>(rng.next_in(-5, 5));
      expected[i] += v[i];
    }
  }
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
    auto req = ireduce(ctx, world,
                       mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                                    512},
                       mpi::ReduceOp::kSum, mpi::Datatype::kInt32, 0, tree,
                       CollOpts{.segment_size = 128});
    co_await ctx.compute(microseconds(50));
    co_await req->wait(ctx);
  };
  engine.run(program);
  EXPECT_EQ(contrib[0], expected);
}

TEST(NonblockingColl, SeveralInFlightCollectivesPipeline) {
  // Two ibcasts issued back to back progress concurrently; both complete.
  topo::Machine m(topo::cori(1), 16);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(16);
  const Tree tree = chain_tree(16, 0);
  std::vector<std::vector<std::byte>> a(16, std::vector<std::byte>(2048)),
      b(16, std::vector<std::byte>(2048));
  a[0].assign(2048, std::byte(0xA1));
  b[0].assign(2048, std::byte(0xB2));
  auto program = [&](Context& ctx) -> sim::Task<> {
    const auto me = static_cast<std::size_t>(ctx.rank());
    auto ra = ibcast(ctx, world, mpi::MutView{a[me].data(), 2048}, 0, tree,
                     CollOpts{.segment_size = 512});
    auto rb = ibcast(ctx, world, mpi::MutView{b[me].data(), 2048}, 0, tree,
                     CollOpts{.segment_size = 512});
    co_await ra->wait(ctx);
    co_await rb->wait(ctx);
  };
  engine.run(program);
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(a[static_cast<std::size_t>(r)][2047], std::byte(0xA1));
    EXPECT_EQ(b[static_cast<std::size_t>(r)][2047], std::byte(0xB2));
  }
}

TEST(Hierarchical, BcastAcrossNodes) {
  topo::Machine m(topo::cori(4), 64);  // 16 ranks per node
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(64);
  const Rank root = 20;  // node 1
  const Bytes bytes = 4096;
  const auto golden = pattern(bytes, 77);
  std::vector<std::vector<std::byte>> bufs(
      64, std::vector<std::byte>(static_cast<std::size_t>(bytes)));
  bufs[20] = golden;
  HierSpec spec;
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
    co_await hier_bcast(ctx, world, mpi::MutView{mine.data(), bytes}, root, m,
                        spec);
  };
  engine.run(program);
  for (int r = 0; r < 64; ++r) {
    EXPECT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].data(),
                          golden.data(), golden.size()),
              0)
        << "rank " << r;
  }
}

TEST(Hierarchical, ReduceAcrossNodes) {
  topo::Machine m(topo::cori(4), 64);
  SimEngine engine(m);
  const mpi::Comm world = mpi::Comm::world(64);
  const Rank root = 5;
  std::vector<std::vector<std::int32_t>> contrib(64);
  std::vector<std::int32_t> expected(100, 0);
  Rng rng(5);
  for (int r = 0; r < 64; ++r) {
    auto& v = contrib[static_cast<std::size_t>(r)];
    v.resize(100);
    for (std::size_t i = 0; i < 100; ++i) {
      v[i] = static_cast<std::int32_t>(rng.next_in(0, 99));
      expected[i] += v[i];
    }
  }
  HierSpec spec;
  auto program = [&](Context& ctx) -> sim::Task<> {
    auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
    co_await hier_reduce(ctx, world,
                         mpi::MutView{reinterpret_cast<std::byte*>(mine.data()),
                                      400},
                         mpi::ReduceOp::kSum, mpi::Datatype::kInt32, root, m,
                         spec);
  };
  engine.run(program);
  EXPECT_EQ(contrib[5], expected);
}

// Every personality must produce correct results, whatever its structure.
class LibraryCorrectness : public testing::TestWithParam<std::string> {};

TEST_P(LibraryCorrectness, BcastAndReduce) {
  const std::string name = GetParam();
  topo::Machine m(topo::cori(4), 64);
  const mpi::Comm world = mpi::Comm::world(64);
  auto lib = make_library(name, m);

  const bool has_bcast = !(name == "intel-topo-shumilin" ||
                           name == "intel-topo-rabenseifner" ||
                           name == "intel-topo-shm-binomial");
  const bool has_reduce =
      !(name == "intel-topo-recdbl" || name == "intel-topo-ring");

  if (has_bcast) {
    SimEngine engine(m);
    const Bytes bytes = 6000;
    const auto golden = pattern(bytes, 1);
    std::vector<std::vector<std::byte>> bufs(
        64, std::vector<std::byte>(static_cast<std::size_t>(bytes)));
    bufs[0] = golden;
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = bufs[static_cast<std::size_t>(ctx.rank())];
      co_await lib->bcast(ctx, world, mpi::MutView{mine.data(), bytes}, 0);
    };
    engine.run(program);
    for (int r = 0; r < 64; ++r) {
      ASSERT_EQ(std::memcmp(bufs[static_cast<std::size_t>(r)].data(),
                            golden.data(), golden.size()),
                0)
          << name << " bcast rank " << r;
    }
  }
  if (has_reduce) {
    SimEngine engine(m);
    std::vector<std::vector<std::int32_t>> contrib(64);
    std::vector<std::int32_t> expected(500, 0);
    Rng rng(2);
    for (int r = 0; r < 64; ++r) {
      auto& v = contrib[static_cast<std::size_t>(r)];
      v.resize(500);
      for (std::size_t i = 0; i < 500; ++i) {
        v[i] = static_cast<std::int32_t>(rng.next_in(-9, 9));
        expected[i] += v[i];
      }
    }
    auto program = [&](Context& ctx) -> sim::Task<> {
      auto& mine = contrib[static_cast<std::size_t>(ctx.rank())];
      co_await lib->reduce(
          ctx, world,
          mpi::MutView{reinterpret_cast<std::byte*>(mine.data()), 2000},
          mpi::ReduceOp::kSum, mpi::Datatype::kInt32, 0);
    };
    engine.run(program);
    EXPECT_EQ(contrib[0], expected) << name << " reduce";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPersonalities, LibraryCorrectness,
    testing::Values("ompi-adapt", "ompi-default", "ompi-default-topo", "cray",
                    "mvapich", "intel", "intel-topo-binomial",
                    "intel-topo-recdbl", "intel-topo-ring",
                    "intel-topo-shm-flat", "intel-topo-shm-knomial",
                    "intel-topo-shm-knary", "intel-topo-shm-binomial",
                    "intel-topo-shumilin", "intel-topo-rabenseifner"),
    [](const testing::TestParamInfo<std::string>& param_info) {
      std::string s = param_info.param;
      for (char& c : s)
        if (c == '-') c = '_';
      return s;
    });

TEST(Library, UnknownNameThrows) {
  topo::Machine m(topo::cori(1), 4);
  EXPECT_THROW(make_library("lam-mpi", m), Error);
}

TEST(Library, DefaultSegmentSizePolicy) {
  EXPECT_EQ(default_segment_size(0), 1);
  EXPECT_EQ(default_segment_size(kib(32)), kib(32));
  EXPECT_EQ(default_segment_size(kib(64)), kib(64));
  EXPECT_EQ(default_segment_size(kib(256)), kib(16));
  EXPECT_EQ(default_segment_size(mib(4)), kib(128));
  EXPECT_EQ(default_segment_size(mib(64)), kib(128));
}

TEST(Library, EndToEndSetsMatchPaper) {
  const auto cori = end_to_end_libraries("cori");
  EXPECT_EQ(cori.size(), 4u);
  EXPECT_TRUE(std::find(cori.begin(), cori.end(), "cray") != cori.end());
  const auto stampede = end_to_end_libraries("stampede2");
  EXPECT_TRUE(std::find(stampede.begin(), stampede.end(), "mvapich") !=
              stampede.end());
}

}  // namespace
}  // namespace adapt::coll
