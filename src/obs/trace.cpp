#include "src/obs/trace.hpp"

#include "src/support/error.hpp"

namespace adapt::obs {

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kColl: return "coll";
    case Cat::kTask: return "task";
    case Cat::kP2p: return "p2p";
    case Cat::kProto: return "proto";
    case Cat::kCpu: return "cpu";
    case Cat::kNoise: return "noise";
  }
  return "?";
}

const char* transfer_kind_name(int kind) {
  switch (kind) {
    case 0: return "eager";
    case 1: return "rts";
    case 2: return "cts";
    case 3: return "bulk";
    case 4: return "abort";
    case kXferAck: return "ack";
  }
  return "?";
}

TransferRec& Recorder::xfer(std::uint64_t id) {
  ADAPT_CHECK(id >= 1 && id <= transfers_.size()) << "bad transfer id " << id;
  return transfers_[static_cast<std::size_t>(id - 1)];
}

std::uint64_t Recorder::transfer_begin(Rank src, Rank dst, Bytes bytes,
                                       int kind, TimeNs t_post) {
  TransferRec rec;
  rec.src = src;
  rec.dst = dst;
  rec.bytes = bytes;
  rec.kind = kind;
  rec.t_post = t_post;
  transfers_.push_back(std::move(rec));
  return transfers_.size();  // ids are 1-based; 0 means "untraced"
}

void Recorder::transfer_active(std::uint64_t id, TimeNs t_active,
                               TimeNs ideal) {
  TransferRec& rec = xfer(id);
  rec.t_active = t_active;
  rec.ideal = ideal;
}

void Recorder::transfer_end(std::uint64_t id, TimeNs t_end) {
  TransferRec& rec = xfer(id);
  rec.t_end = t_end;
  rec.done = true;
}

void Recorder::transfer_undelivered(std::uint64_t id) {
  xfer(id).delivered = false;
}

void Recorder::transfer_alpha_only(Rank src, Rank dst, int kind, TimeNs t_post,
                                   TimeNs t_end) {
  const std::uint64_t id = transfer_begin(src, dst, 0, kind, t_post);
  transfer_active(id, t_end, 0);
  transfer_end(id, t_end);
}

void Recorder::cpu_task(Rank r, bool progress, TimeNs t_request,
                        TimeNs t_ready, TimeNs t_start, TimeNs t_end) {
  RankCounters& rc = metrics_.rank(r);
  if (progress) {
    rc.progress_busy_ns += t_end - t_start;
  } else {
    rc.cpu_busy_ns += t_end - t_start;
    rc.noise_wait_ns += t_start - t_ready;
  }
  // A record that neither waited nor ran carries no information: skipping it
  // keeps traces sparse and the critical-path walk free of zero-length hops.
  if (t_end == t_request) return;
  cpu_.push_back(CpuRec{r, progress, t_request, t_ready, t_start, t_end});
}

}  // namespace adapt::obs
