// Cluster presets modelling the paper's three evaluation platforms (§5), plus
// a small parser so examples can describe ad-hoc machines on the command line.
//
// Link parameters are realistic figures for each interconnect generation, not
// the authors' measured values (which the paper does not publish): Aries and
// Omni-Path node-to-node bandwidth/latency, QPI, dual-socket shared memory,
// PCIe gen3 and FDR InfiniBand. EXPERIMENTS.md discusses how figure shapes
// depend on these only through ratios, not absolutes.
#pragma once

#include <string>

#include "src/topo/hardware.hpp"

namespace adapt::topo {

/// Cori-like: 32 ranks/node (2 × 16-core Xeon E5-2698-class), Cray Aries.
MachineSpec cori(int nodes);

/// Stampede2-like: 48 ranks/node (2 × 24-core Xeon 8160), Intel Omni-Path.
MachineSpec stampede2(int nodes);

/// NVIDIA PSG-like: 2 × 10-core IvyBridge, 2 K40 GPUs per socket, FDR IB.
MachineSpec psg(int nodes);

/// HAN-capable cluster: `ppn` single-socket cores per node with a first-class
/// per-node SHM channel (the two-level collectives' intra-node transport)
/// over a Cori-flavoured Aries fabric.
MachineSpec han_cluster(int nodes, int ppn);

/// Looks up a preset by name ("cori", "stampede2", "psg").
MachineSpec preset(const std::string& name, int nodes);

/// Parses "nodes=4,sockets=2,cores=8,gpus=0,alpha_node=1200,bw_node=8" style
/// specs; unknown keys throw. Bandwidths in GB/s, latencies in ns.
MachineSpec parse_spec(const std::string& text);

}  // namespace adapt::topo
