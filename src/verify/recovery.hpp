// Recovery conformance: chaos rows that demand *successful completion on the
// survivors*, not just a uniform error.
//
// The PR 2 chaos matrix certifies fail-stop semantics (byte-exact or one
// consistent error code). These rows certify the self-healing layer on top:
//
//   * resilient_bcast / resilient_allreduce must complete on the survivor
//     communicator and deliver bytes exactly equal to the failure-free oracle
//     over that communicator's members — same code, same shrunk membership,
//     same attempt count on every live rank (a dead bcast root is the one
//     unrecoverable case and must be reported uniformly);
//   * ec_bcast / ec_allreduce must finish within the staleness bound on every
//     live rank, and their result must equal the fold over exactly the
//     contributors they report.
//
// Every case is run TWICE and the two runs — per-rank codes, membership
// masks, payload bytes, and the full Perfetto trace hash — must be identical:
// recovery is deterministic, same seed ⇒ same shrunk membership ⇒ same trace.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/net/fault.hpp"
#include "src/support/units.hpp"

namespace adapt::verify {

enum class RecoveryOp { kBcast, kAllreduce, kEcBcast, kEcAllreduce };

const char* recovery_op_name(RecoveryOp op);

struct RecoveryCase {
  RecoveryOp op = RecoveryOp::kBcast;
  int world = 8;
  Bytes bytes = 2048;
  Bytes segment = 256;
  std::uint64_t data_seed = 1;
  std::uint64_t chaos_seed = 1;
  bool kill = true;  ///< inject one rank death (root 0 included in the draw)
  TimeNs staleness = milliseconds(30);  ///< EC rows' deadline
  /// Virtual-time backstop: any rank still unfinished is watchdog-poisoned,
  /// which the classifier always treats as a failure on a live rank. Sized
  /// far above the worst recovery cascade (~150 ms) so it only fires on a
  /// genuine hang.
  TimeNs wd_bomb = milliseconds(900);
};

/// The seeded fault schedule recovery rows run under: soft faults mild
/// enough that the reliability layer heals them without false suspicion
/// (drop 2-10%, corruption up to 5%, delay up to 5µs, no outages), plus —
/// for kill — one death drawn uniformly over the world, timed to land
/// mid-collective or mid-agreement (200µs .. 4ms).
net::FaultPlan make_recovery_plan(std::uint64_t seed, bool kill, int world);

/// One-line description of a case (failure reporting; not machine-parsed).
std::string recovery_repro(const RecoveryCase& c);

/// Runs one case twice (determinism pin) and classifies the outcome.
/// Returns nullopt on success, a human-readable description on failure.
/// On failure, `failing_trace` (when non-null) receives the Perfetto trace
/// JSON of the offending run, ready to be written as a CI artifact.
std::optional<std::string> run_recovery_case(const RecoveryCase& c,
                                             std::string* failing_trace =
                                                 nullptr);

struct RecoveryReport {
  int cases = 0;
  std::vector<std::string> failures;  ///< "repro -- detail" lines
  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

struct RecoveryMatrixOptions {
  int seeds = 4;  ///< chaos seeds per (op, kill) cell
  /// When non-empty, each failing case's Perfetto trace is written to
  /// `<trace_dir>/recovery-failure-<N>.trace.json` (N counts failures).
  std::string trace_dir;
  std::function<void(const std::string&)> log;
  /// Called with recovery_repro(case) just before each case starts, so a
  /// driver's wall-clock watchdog can report exactly which case hung.
  std::function<void(const std::string&)> on_case;
};

/// op × {kill, no-kill} × seeds at eager size, plus one rendezvous-sized row
/// per cell (bulk-frame retransmits and deaths mid-bulk).
std::vector<RecoveryCase> recovery_matrix(int seeds);

RecoveryReport run_recovery_matrix(const RecoveryMatrixOptions& options);

}  // namespace adapt::verify
