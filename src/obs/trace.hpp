// Deterministic virtual-time trace recorder.
//
// One Recorder instance observes one SimEngine run. It captures four kinds
// of typed records:
//
//   * SpanRec / InstantRec — human-oriented timeline events (collective
//     begin/end per rank, ADAPT task segments, protocol instants such as
//     retransmits, unexpected-queue hits, aborts);
//   * TransferRec — the P2P data-movement lifecycle: post time (the instant
//     the message entered the fabric, or its serial transmit queue), active
//     time (first byte moving — everything before it is Hockney α plus
//     queueing, which the fabric charges against α), end time (last byte
//     arrived), and the *ideal* uncontended bytes phase at the route's
//     per-flow cap. The gap (end - active) - ideal is pure contention.
//   * CpuRec — one occupation of a rank CPU: request time, ready time (CPU
//     free), start time (noise gone; only the MAIN context is preemptible),
//     end time. Zero-information records (nothing waited, nothing ran) are
//     skipped so traces stay proportional to actual work.
//
// Determinism contract: all record content derives from virtual time and
// the engine's deterministic schedule, and records are appended in schedule
// order — two runs with identical seeds produce byte-identical exports.
// The Recorder is single-threaded by design and must only be attached to a
// SimEngine (the ThreadEngine ignores it).
//
// Zero overhead when disabled: the engine installs hook pointers only when
// `enabled()`; a disabled or absent recorder costs each hot path exactly one
// null-pointer test (guarded by bench/micro_framework).
//
// Flight mode (obs/flight.hpp) makes the same Recorder safe to leave on
// forever: high-frequency record classes are sampled 1-in-N and every record
// vector is bounded to a per-rank window, evicting the oldest half when full.
// Low-frequency, high-information classes (collective spans, protocol, tuner
// and plan-cache events) are always kept, and the MetricsRegistry stays
// exact — sampling only thins the timeline, never the counters.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/support/units.hpp"

namespace adapt::obs {

/// Trace-track addressing: process 0 is the fabric ("net"), process r+1 is
/// rank r. Each rank owns two threads, matching the paper's execution model.
constexpr int kNetPid = 0;
inline int rank_pid(Rank r) { return static_cast<int>(r) + 1; }
enum Tid : int { kTidMain = 0, kTidProgress = 1 };

/// Span/instant taxonomy (exported as the Chrome trace "cat" field).
enum class Cat : std::uint8_t {
  kColl,   ///< whole-collective spans per rank
  kTask,   ///< ADAPT task-segment events (recv/send/reduce of one segment)
  kP2p,    ///< message lifecycle
  kProto,  ///< reliability protocol: retransmits, give-ups, aborts, recovery
  kCpu,    ///< CPU occupation
  kNoise,  ///< noise-induced stalls
  kTune,   ///< decision-engine events (grid priced, winner, predicted time)
  kCache,  ///< plan-cache events (hit/miss/invalidate)
};
const char* cat_name(Cat cat);

/// Transfer kinds: mpi::Frame::Kind values 0..4; acks are distinct.
constexpr int kXferAck = 100;
const char* transfer_kind_name(int kind);

struct SpanRec {
  int pid = 0;
  int tid = 0;
  Cat cat = Cat::kColl;
  std::string name;
  TimeNs t0 = 0;
  TimeNs t1 = 0;
  std::int64_t arg = 0;
};

struct InstantRec {
  int pid = 0;
  int tid = 0;
  Cat cat = Cat::kP2p;
  std::string name;
  TimeNs t = 0;
  std::int64_t arg = 0;
};

/// One fabric-link occupancy sample (flow count after a change).
struct LinkSampleRec {
  int link = 0;
  TimeNs t = 0;
  std::int64_t flows = 0;
};

struct TransferRec {
  Rank src = -1;
  Rank dst = -1;
  Bytes bytes = 0;
  int kind = 0;  ///< mpi::Frame::Kind value, or kXferAck
  TimeNs t_post = -1;
  TimeNs t_active = -1;
  TimeNs t_end = -1;
  TimeNs ideal = 0;  ///< uncontended bytes-phase duration at the flow cap
  bool delivered = true;
  bool done = false;
};

struct CpuRec {
  Rank rank = -1;
  bool progress = false;
  TimeNs t_request = 0;  ///< when the work was posted
  TimeNs t_ready = 0;    ///< when the CPU came free (queueing before this)
  TimeNs t_start = 0;    ///< when noise released the CPU (main context only)
  TimeNs t_end = 0;
};

/// Event-queue pressure, sampled by sim::EventQueue when installed.
struct QueueStats {
  std::uint64_t scheduled = 0;
  std::uint64_t max_depth = 0;
};

/// Flight-recorder bounds. The retained window per record type is
/// max(min_window, window_per_rank * nranks) records; when a vector fills
/// the oldest half is evicted (amortised O(1) per append). High-frequency
/// classes (task events, P2P instants, CPU timeline, data transfers) keep
/// one record in sample_period; everything else is always kept.
struct FlightConfig {
  int window_per_rank = 256;
  int min_window = 4096;
  std::uint32_t sample_period = 4;
};

class Recorder {
 public:
  explicit Recorder(bool enabled = true) : enabled_(enabled) {}

  /// When false the engine never installs hooks: a run records nothing.
  bool enabled() const { return enabled_; }

  /// True when bounded-window sampling mode is active (see FlightRecorder).
  bool flight() const { return flight_; }
  /// Records sampled out or evicted in flight mode (exact count).
  std::uint64_t dropped() const { return dropped_; }

  /// Sizes per-rank state: the metrics table and, in flight mode, the
  /// retained record windows. The engine calls this once at attach.
  void init_ranks(int nranks);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  QueueStats& queue_stats() { return queue_stats_; }
  const QueueStats& queue_stats() const { return queue_stats_; }

  /// Virtual-time source, installed by the engine; hooks that do not carry
  /// an explicit timestamp (endpoint/channel instants) read it from here.
  void set_clock(std::function<TimeNs()> clock) { clock_ = std::move(clock); }
  TimeNs now() const { return clock_ ? clock_() : 0; }

  // -- timeline events ----------------------------------------------------
  void span(int pid, int tid, Cat cat, std::string name, TimeNs t0, TimeNs t1,
            std::int64_t arg = 0);
  void instant(int pid, int tid, Cat cat, std::string name, TimeNs t,
               std::int64_t arg = 0);
  void link_sample(int link, TimeNs t, std::int64_t flows);

  // -- transfer lifecycle (fabric + transport hooks) -----------------------
  /// Returns a non-zero id carried in net::Route::trace (0 = untraced; in
  /// flight mode a sampled-out transfer also returns 0).
  std::uint64_t transfer_begin(Rank src, Rank dst, Bytes bytes, int kind,
                               TimeNs t_post);
  void transfer_active(std::uint64_t id, TimeNs t_active, TimeNs ideal);
  void transfer_end(std::uint64_t id, TimeNs t_end);
  void transfer_undelivered(std::uint64_t id);
  /// Convenience for control legs that bypass the fluid fabric: an
  /// alpha-only transfer recorded complete in one call.
  void transfer_alpha_only(Rank src, Rank dst, int kind, TimeNs t_post,
                           TimeNs t_end);

  // -- CPU occupation (engine scheduling hooks) ----------------------------
  void cpu_task(Rank r, bool progress, TimeNs t_request, TimeNs t_ready,
                TimeNs t_start, TimeNs t_end);

  // -- post-run access -----------------------------------------------------
  const std::vector<SpanRec>& spans() const { return spans_; }
  const std::vector<InstantRec>& instants() const { return instants_; }
  const std::vector<LinkSampleRec>& link_samples() const {
    return link_samples_;
  }
  const std::vector<TransferRec>& transfers() const { return transfers_; }
  const std::vector<CpuRec>& cpu_tasks() const { return cpu_; }

  /// Total records of every type (the zero-event guarantee checks this).
  std::uint64_t event_count() const {
    return spans_.size() + instants_.size() + link_samples_.size() +
           transfers_.size() + cpu_.size();
  }

 protected:
  Recorder(bool enabled, const FlightConfig& config);

 private:
  TransferRec* xfer(std::uint64_t id);
  /// Flight-mode eviction: drop the oldest half once `v` reaches the window.
  template <typename T>
  void bound(std::vector<T>& v);
  void bound_transfers();
  /// Flight-mode 1-in-N sampling decision for a high-frequency class.
  bool sampled_out(std::uint32_t& tick);
  static bool high_frequency(Cat cat) {
    return cat == Cat::kTask || cat == Cat::kP2p;
  }

  bool enabled_;
  bool flight_ = false;
  FlightConfig config_;
  std::size_t window_ = 0;  ///< per-type retained records; 0 = unbounded
  std::uint64_t dropped_ = 0;
  std::uint64_t xfer_base_ = 0;  ///< transfers evicted so far (id offset)
  std::uint32_t tick_event_ = 0;
  std::uint32_t tick_cpu_ = 0;
  std::uint32_t tick_xfer_ = 0;
  std::function<TimeNs()> clock_;
  MetricsRegistry metrics_;
  QueueStats queue_stats_;
  std::vector<SpanRec> spans_;
  std::vector<InstantRec> instants_;
  std::vector<LinkSampleRec> link_samples_;
  std::vector<TransferRec> transfers_;
  std::vector<CpuRec> cpu_;
};

}  // namespace adapt::obs
