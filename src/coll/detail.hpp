// Internal helpers shared by the collective implementations.
#pragma once

#include "src/coll/coll.hpp"

namespace adapt::coll::detail {

/// A rank's resolved position in a tree: its local rank and the *global*
/// ranks of its parent and children (what the endpoint addresses).
struct Edges {
  Rank me_local = -1;
  Rank parent_global = -1;  ///< -1 at the root
  std::vector<Rank> kids_global;
  bool is_root = false;
};

Edges resolve(const runtime::Context& ctx, const mpi::Comm& comm,
              const Tree& tree);

/// CPU (or GPU) time to fold `len` bytes into an accumulator.
TimeNs reduce_cost(const runtime::Context& ctx, const CollOpts& opts,
                   Bytes len);

/// Element-wise dst = dst OP src when both views are real; no-op for
/// synthetic payloads (the cost model is charged by the caller either way).
void apply_if_real(mpi::MutView dst, mpi::ConstView src, mpi::ReduceOp op,
                   mpi::Datatype dtype, Bytes len);

}  // namespace adapt::coll::detail
