// Pending-event priority queue for the discrete-event kernel.
//
// Ordering is (time, insertion sequence): events at equal times fire in the
// order they were scheduled, which makes whole-simulation traces reproducible
// bit-for-bit — a property the determinism tests pin down.
//
// Schedule perturbation (verification mode): a seeded PerturbConfig replaces
// the same-time tie-break with a random draw and may add bounded delivery
// jitter to every event's firing time. Causality is preserved — an event
// never fires before its scheduled time, so anything scheduled from inside a
// callback still runs after it — but the interleaving of *concurrently
// pending* events becomes one of the many legal schedules instead of always
// the same one. Two queues with the same seed replay the same schedule.
//
// Cancellation is lazy: a cancelled entry stays in the heap until it reaches
// the top and is then discarded, keeping push/pop at O(log n) with no
// secondary index.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/support/rng.hpp"
#include "src/support/units.hpp"

namespace adapt::sim {

/// Seeded schedule perturbation for conformance testing (off by default).
struct PerturbConfig {
  std::uint64_t seed = 1;
  /// Replace FIFO ordering of same-time events with a seeded random order.
  bool shuffle_ties = true;
  /// Uniform random delay in [0, max_jitter] added to every event's firing
  /// time, so events scheduled within `max_jitter` of each other may fire in
  /// either order. 0 = tie-shuffling only.
  TimeNs max_jitter = 0;
};

/// Cancellable handle to a scheduled event. Cheap shared ownership: the queue
/// keeps one reference until the event fires or is skipped.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event's callback from running. Idempotent; safe after fire.
  void cancel() {
    if (state_) state_->cancelled = true;
  }
  bool valid() const { return state_ != nullptr; }

 private:
  friend class EventQueue;
  struct State {
    std::function<void()> fn;
    bool cancelled = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Min-heap of timed callbacks with stable same-time ordering.
class EventQueue {
 public:
  EventHandle push(TimeNs time, std::function<void()> fn);

  /// Enables (or, with nullopt, disables) schedule perturbation for all
  /// subsequently pushed events. Typically set before any push.
  void set_perturbation(std::optional<PerturbConfig> config);
  bool perturbed() const { return perturb_.has_value(); }

  /// True when no live (non-cancelled) events remain.
  bool empty() const;

  /// Entry count, counting cancelled entries not yet collected (upper bound
  /// on live events).
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event; precondition: !empty().
  TimeNs next_time() const;

  /// Pops the earliest live event and returns (time, callback).
  /// Precondition: !empty().
  std::pair<TimeNs, std::function<void()>> pop();

  std::uint64_t total_scheduled() const { return seq_; }

  /// Installs (or clears, with nullptr) observability counters: scheduled
  /// events and peak heap depth. One branch per push when installed; nothing
  /// on the path otherwise — the zero-overhead contract.
  void set_stats(obs::QueueStats* stats) { stats_ = stats; }

 private:
  struct Entry {
    TimeNs time;
    std::uint64_t tie;  ///< seq normally; a seeded random draw when perturbed
    std::uint64_t seq;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  obs::QueueStats* stats_ = nullptr;
  std::uint64_t seq_ = 0;
  std::optional<PerturbConfig> perturb_;
  Rng perturb_rng_{0};
};

}  // namespace adapt::sim
