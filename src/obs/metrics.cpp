#include "src/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "src/support/error.hpp"

namespace adapt::obs {

void Histogram::record(std::int64_t v) {
  ADAPT_CHECK(v >= 0) << "histogram samples are non-negative";
  const auto bucket = std::bit_width(static_cast<std::uint64_t>(v));
  ++buckets[static_cast<std::size_t>(bucket)];
  ++count;
  sum += v;
  max = std::max(max, v);
}

void MetricsRegistry::init_ranks(int nranks) {
  ADAPT_CHECK(nranks >= 0);
  if (static_cast<std::size_t>(nranks) > ranks_.size()) {
    ranks_.resize(static_cast<std::size_t>(nranks));
  }
}

RankCounters& MetricsRegistry::rank(Rank r) {
  ADAPT_CHECK(r >= 0);
  if (static_cast<std::size_t>(r) >= ranks_.size()) {
    ranks_.resize(static_cast<std::size_t>(r) + 1);
  }
  return ranks_[static_cast<std::size_t>(r)];
}

std::int64_t& MetricsRegistry::link_bytes(int link) {
  ADAPT_CHECK(link >= 0);
  if (static_cast<std::size_t>(link) >= link_bytes_.size()) {
    link_bytes_.resize(static_cast<std::size_t>(link) + 1, 0);
  }
  return link_bytes_[static_cast<std::size_t>(link)];
}

std::int64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

std::int64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

bool MetricsRegistry::empty() const {
  for (const RankCounters& rc : ranks_) {
    if (rc.cpu_busy_ns || rc.progress_busy_ns || rc.noise_wait_ns ||
        rc.progress_starved_ns || rc.sends || rc.send_bytes || rc.recvs ||
        rc.recv_bytes) {
      return false;
    }
  }
  for (const std::int64_t b : link_bytes_) {
    if (b != 0) return false;
  }
  for (const auto& [name, value] : counters_) {
    if (value != 0) return false;
  }
  for (const auto& [name, h] : histograms_) {
    if (h.count != 0) return false;
  }
  return true;
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "kind,name,value,extra\n";
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const RankCounters& rc = ranks_[r];
    os << "rank," << r << ".cpu_busy_ns," << rc.cpu_busy_ns << ",\n";
    os << "rank," << r << ".progress_busy_ns," << rc.progress_busy_ns
       << ",\n";
    os << "rank," << r << ".noise_wait_ns," << rc.noise_wait_ns << ",\n";
    os << "rank," << r << ".progress_starved_ns," << rc.progress_starved_ns
       << ",\n";
    os << "rank," << r << ".sends," << rc.sends << ",\n";
    os << "rank," << r << ".send_bytes," << rc.send_bytes << ",\n";
    os << "rank," << r << ".recvs," << rc.recvs << ",\n";
    os << "rank," << r << ".recv_bytes," << rc.recv_bytes << ",\n";
  }
  for (std::size_t l = 0; l < link_bytes_.size(); ++l) {
    os << "link," << l << ".bytes," << link_bytes_[l] << ",\n";
  }
  for (const auto& [name, value] : counters_) {
    os << "counter," << name << "," << value << ",\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << "," << h.count << ",max=" << h.max
       << ";sum=" << h.sum << "\n";
  }
}

}  // namespace adapt::obs
