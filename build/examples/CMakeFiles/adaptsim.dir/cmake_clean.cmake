file(REMOVE_RECURSE
  "CMakeFiles/adaptsim.dir/adaptsim.cpp.o"
  "CMakeFiles/adaptsim.dir/adaptsim.cpp.o.d"
  "adaptsim"
  "adaptsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
