file(REMOVE_RECURSE
  "../bench/fig08_topo"
  "../bench/fig08_topo.pdb"
  "CMakeFiles/fig08_topo.dir/fig08_topo.cpp.o"
  "CMakeFiles/fig08_topo.dir/fig08_topo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
