// Minimal leveled logger. Off by default (benchmarks must stay quiet); tests
// and examples can raise the level. Not thread-safe beyond line atomicity,
// which is all the thread engine needs.
#pragma once

#include <sstream>
#include <string>

namespace adapt {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global log threshold; messages above it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

/// Stream-style logging: ADAPT_LOG(kInfo) << "rank " << r << " done";
#define ADAPT_LOG(level)                                              \
  if (::adapt::LogLevel::level > ::adapt::log_level()) {              \
  } else                                                              \
    ::adapt::detail::LogStream(::adapt::LogLevel::level).stream()

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  std::ostream& stream() { return ss_; }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace detail
}  // namespace adapt
