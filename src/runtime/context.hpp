// The per-rank programming interface.
//
// Rank programs are coroutines receiving a Context&. The same program runs
// unchanged on the discrete-event SimEngine (virtual time, any scale, noise
// injectable) and on the ThreadEngine (real threads, wall-clock time) — the
// Context hides which engine is underneath, like MPI hides the BTL.
#pragma once

#include <functional>

#include "src/mpi/endpoint.hpp"
#include "src/mpi/p2p.hpp"
#include "src/sim/task.hpp"
#include "src/support/units.hpp"
#include "src/topo/hardware.hpp"

namespace adapt::gpu {
class Device;  // defined in src/gpu/device.hpp; null on CPU-only engines
}

namespace adapt::obs {
class Recorder;  // defined in src/obs/trace.hpp; null unless tracing is on
}

namespace adapt::support {
class BufferPool;  // defined in src/support/buffer_pool.hpp
}

namespace adapt::tune {
class Tuner;      // defined in src/tune/tuner.hpp; null unless tuning is on
class PlanCache;  // defined in src/tune/plan_cache.hpp
}

namespace adapt::runtime {

class Recovery;  // defined in src/runtime/recovery.hpp

class Context {
 public:
  virtual ~Context() = default;

  virtual Rank rank() const = 0;
  virtual int nranks() const = 0;
  /// Current time: virtual ns on the SimEngine, steady-clock ns on the
  /// ThreadEngine.
  virtual TimeNs now() const = 0;
  virtual mpi::Endpoint& endpoint() = 0;
  virtual const topo::Machine& machine() const = 0;

  /// Occupies this rank's CPU for `cost` (models local computation; on the
  /// ThreadEngine it spins for real). Suspends the coroutine.
  virtual sim::Task<> compute(TimeNs cost) = 0;

  /// Passive wait (does not occupy the CPU).
  virtual sim::Task<> sleep_for(TimeNs duration) = 0;

  /// Callback-style compute: runs `fn` once this rank's CPU has been busy for
  /// `cpu_cost`, without suspending the caller. This is how event-driven code
  /// (ADAPT callbacks) performs segment reductions — the cost still occupies
  /// the CPU and is still deferred by noise, but nothing waits on it except
  /// the work that truly depends on the result.
  virtual void defer(TimeNs cpu_cost, std::function<void()> fn) = 0;

  /// Like defer, but on the communication-engine (progress) context, where
  /// ADAPT's event callbacks execute their segment reductions (§2.2.1/§4.2):
  /// system noise preempts the application thread, not this context.
  virtual void defer_progress(TimeNs cpu_cost, std::function<void()> fn) = 0;

  /// This rank's GPU, or nullptr when the engine/machine has none.
  virtual gpu::Device* gpu() { return nullptr; }

  /// The engine's buffer pool for staging scratch, or nullptr when no pool
  /// is available (collectives then fall back to plain heap payloads).
  virtual support::BufferPool* pool() { return nullptr; }

  /// The run's trace/metrics recorder, or nullptr when observability is off
  /// (always null on the ThreadEngine — the recorder is single-threaded).
  /// Instrumented code guards every record with this one null test.
  virtual obs::Recorder* recorder() { return nullptr; }

  /// The engine's adaptive decision engine, or nullptr when tuning is off
  /// (the default — tunable personalities then keep their built-in
  /// heuristics, byte-identical to the seed).
  virtual tune::Tuner* tuner() { return nullptr; }

  /// The engine's persistent-collective plan cache, or nullptr on engines
  /// without one (persistent init then builds an uncached private plan).
  virtual tune::PlanCache* plan_cache() { return nullptr; }

  /// This rank's recovery facade (failure views, agreement, revocation), or
  /// nullptr when the engine runs without recovery — callers then keep the
  /// PR 2 fail-stop semantics (mpi::comm_agree falls back to a plain
  /// failure-free gather+bcast, self-healing wrappers become single-shot).
  virtual Recovery* recovery() { return nullptr; }

  // -- P2P conveniences ----------------------------------------------------
  mpi::RequestPtr isend(Rank dst, Tag tag, mpi::ConstView data,
                        mpi::SendOpts opts = {}) {
    return endpoint().isend(dst, tag, data, opts);
  }
  mpi::RequestPtr irecv(Rank src, Tag tag, mpi::MutView buffer) {
    return endpoint().irecv(src, tag, buffer);
  }
  /// Blocking send/recv, MPI_Send/MPI_Recv-style.
  sim::Task<> send(Rank dst, Tag tag, mpi::ConstView data,
                   mpi::SendOpts opts = {}) {
    co_await mpi::wait(isend(dst, tag, data, opts));
  }
  sim::Task<> recv(Rank src, Tag tag, mpi::MutView buffer) {
    co_await mpi::wait(irecv(src, tag, buffer));
  }

  /// Deterministic collective-tag allocation: every rank must call collective
  /// operations in the same order, so per-rank counters agree — the same
  /// contract MPI imposes on communicator usage.
  Tag alloc_tags(Tag count) {
    ADAPT_CHECK(count > 0);
    const Tag base = next_tag_;
    next_tag_ += count;
    return base;
  }

 private:
  Tag next_tag_ = 1 << 20;  // leave low tags free for user P2P
};

/// A rank program: started once per rank by Engine::run.
using RankProgram = std::function<sim::Task<>(Context&)>;

/// Engine-run outcome.
struct RunResult {
  TimeNs total_time = 0;               ///< time until the last rank finished
  std::vector<TimeNs> rank_finish;     ///< per-rank completion times
};

/// Abstract execution engine (SimEngine / ThreadEngine).
class Engine {
 public:
  virtual ~Engine() = default;
  virtual int nranks() const = 0;
  /// Runs `program` on every rank to completion. May be called repeatedly;
  /// time continues monotonically across calls.
  virtual RunResult run(const RankProgram& program) = 0;
};

}  // namespace adapt::runtime
