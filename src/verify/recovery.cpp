#include "src/verify/recovery.hpp"

#include <fstream>
#include <memory>
#include <sstream>

#include "src/coll/eventual.hpp"
#include "src/coll/selfheal.hpp"
#include "src/mpi/comm_ft.hpp"
#include "src/mpi/errors.hpp"
#include "src/obs/export.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/sim_engine.hpp"
#include "src/support/error.hpp"
#include "src/support/rng.hpp"
#include "src/topo/presets.hpp"
#include "src/verify/chaos.hpp"

namespace adapt::verify {

const char* recovery_op_name(RecoveryOp op) {
  switch (op) {
    case RecoveryOp::kBcast: return "resilient_bcast";
    case RecoveryOp::kAllreduce: return "resilient_allreduce";
    case RecoveryOp::kEcBcast: return "ec_bcast";
    case RecoveryOp::kEcAllreduce: return "ec_allreduce";
  }
  return "?";
}

net::FaultPlan make_recovery_plan(std::uint64_t seed, bool kill, int world) {
  net::FaultPlan plan;
  // Distinct stream from make_chaos_plan so the two matrices never replay
  // each other's schedules.
  Rng rng(SplitMix64(seed * 11 + (kill ? 5 : 3) +
                     static_cast<std::uint64_t>(world) * 0x20003ULL)
              .next());
  plan.seed = rng.next_u64() | 1;
  plan.drop = 0.02 + 0.08 * rng.next_double();
  plan.corrupt = 0.05 * rng.next_double();
  plan.max_delay = rng.next_time(0, microseconds(5));
  if (kill) {
    net::FaultPlan::Death death;
    death.rank = static_cast<Rank>(rng.next_below(
        static_cast<std::size_t>(world)));
    death.at = rng.next_time(microseconds(200), milliseconds(4));
    plan.deaths.push_back(death);
  }
  return plan;
}

std::string recovery_repro(const RecoveryCase& c) {
  std::ostringstream out;
  out << "op=" << recovery_op_name(c.op) << " world=" << c.world
      << " bytes=" << c.bytes << " seg=" << c.segment
      << " data_seed=" << c.data_seed << " chaos_seed=" << c.chaos_seed
      << " kill=" << (c.kill ? 1 : 0) << " staleness=" << c.staleness;
  return out.str();
}

namespace {

bool resilient(RecoveryOp op) {
  return op == RecoveryOp::kBcast || op == RecoveryOp::kAllreduce;
}

bool bcast_like(RecoveryOp op) {
  return op == RecoveryOp::kBcast || op == RecoveryOp::kEcBcast;
}

/// Broadcast payloads: a per-rank pattern, so a non-root buffer that was
/// never overwritten is distinguishable from the root's data.
std::byte bcast_byte(std::uint64_t data_seed, Rank r, Bytes i) {
  return static_cast<std::byte>(
      (data_seed * 131 + static_cast<std::uint64_t>(r) * 257 +
       static_cast<std::uint64_t>(i) * 13) &
      0xff);
}

/// Reduce payloads: rank r contributes the constant byte 1 << (r % 8) under
/// ReduceOp::kBor, so "the fold over member set S" is exactly the OR of
/// their bits — checkable for ANY agreed/reported membership.
std::byte reduce_byte(Rank r) {
  return static_cast<std::byte>(1u << (r % 8));
}

struct RankOut {
  char finished = 0;
  char bombed = 0;
  mpi::ErrCode code = mpi::ErrCode::kOk;
  int attempts = 0;
  /// Resilient: final communicator membership. EC: reported contributors.
  std::uint64_t mask = 0;
  std::uint64_t failed = 0;
  bool complete = false;
  TimeNs start = 0;
  TimeNs finish = 0;
  std::vector<std::byte> buf;

  bool operator==(const RankOut&) const = default;
};

struct Outcome {
  std::vector<RankOut> ranks;
  std::uint64_t trace_hash = 0;
  std::string trace_json;  ///< the hashed trace, kept for failure artifacts
};

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Outcome run_once(const RecoveryCase& rc, const net::FaultPlan& plan) {
  const topo::Machine machine(topo::cori(2), rc.world);
  const mpi::Comm comm = mpi::Comm::world(rc.world);

  runtime::SimEngineOptions opts;
  opts.faults = plan;
  opts.reliability = chaos_reliability();
  runtime::RecoveryOptions ro;
  ro.staleness_bound = rc.staleness;
  opts.recovery = ro;
  auto recorder = std::make_shared<obs::Recorder>();
  opts.recorder = recorder;
  runtime::SimEngine engine(machine, opts);

  Outcome out;
  out.ranks.resize(static_cast<std::size_t>(rc.world));
  std::vector<std::vector<std::byte>> bufs(
      static_cast<std::size_t>(rc.world));
  for (Rank r = 0; r < rc.world; ++r) {
    auto& buf = bufs[static_cast<std::size_t>(r)];
    buf.resize(static_cast<std::size_t>(rc.bytes));
    for (Bytes i = 0; i < rc.bytes; ++i) {
      buf[static_cast<std::size_t>(i)] = bcast_like(rc.op)
                                             ? bcast_byte(rc.data_seed, r, i)
                                             : reduce_byte(r);
    }
  }

  coll::ResilientOpts res_opts;
  res_opts.coll.segment_size = rc.segment;
  coll::EcOpts ec_opts;
  ec_opts.staleness = rc.staleness;

  const auto program = [&](runtime::Context& ctx) -> sim::Task<> {
    const Rank g = ctx.rank();
    RankOut& r = out.ranks[static_cast<std::size_t>(g)];
    auto& buf = bufs[static_cast<std::size_t>(g)];
    const mpi::MutView view{buf.data(), static_cast<Bytes>(buf.size())};
    r.start = ctx.now();
    try {
      switch (rc.op) {
        case RecoveryOp::kBcast: {
          const coll::ResilientResult res =
              co_await coll::resilient_bcast(ctx, comm, view, 0, res_opts);
          r.code = res.code;
          r.attempts = res.attempts;
          r.mask = mpi::member_mask(res.comm);
          r.failed = res.failed;
          break;
        }
        case RecoveryOp::kAllreduce: {
          const coll::ResilientResult res = co_await coll::resilient_allreduce(
              ctx, comm, view, mpi::ReduceOp::kBor, mpi::Datatype::kUint8,
              res_opts);
          r.code = res.code;
          r.attempts = res.attempts;
          r.mask = mpi::member_mask(res.comm);
          r.failed = res.failed;
          break;
        }
        case RecoveryOp::kEcBcast: {
          const coll::EcResult res =
              co_await coll::ec_bcast(ctx, comm, view, 0, ec_opts);
          r.mask = res.contributors;
          r.complete = res.complete;
          break;
        }
        case RecoveryOp::kEcAllreduce: {
          const coll::EcResult res = co_await coll::ec_allreduce(
              ctx, comm, view, mpi::ReduceOp::kBor, mpi::Datatype::kUint8,
              ec_opts);
          r.mask = res.contributors;
          r.complete = res.complete;
          break;
        }
      }
    } catch (const mpi::FaultError& e) {
      r.code = e.code();
    }
    r.finish = ctx.now();
    r.finished = 1;
  };

  engine.simulator().at(rc.wd_bomb, [&] {
    for (Rank g = 0; g < rc.world; ++g) {
      RankOut& r = out.ranks[static_cast<std::size_t>(g)];
      if (!r.finished) {
        r.bombed = 1;
        engine.poison_rank(g, mpi::ErrCode::kErrWatchdog);
      }
    }
  });
  engine.run(program);

  for (Rank g = 0; g < rc.world; ++g) {
    out.ranks[static_cast<std::size_t>(g)].buf =
        std::move(bufs[static_cast<std::size_t>(g)]);
  }
  std::ostringstream os;
  obs::write_trace_json(*recorder, os);
  out.trace_json = os.str();
  out.trace_hash = fnv1a64(out.trace_json);
  return out;
}

/// Checks `buf` is uniformly the fold (OR) over `members`' reduce bytes.
std::string check_fold(const std::vector<std::byte>& buf,
                       std::uint64_t members, Rank rank) {
  std::uint8_t want = 0;
  for (Rank r = 0; r < 64; ++r) {
    if ((members >> r) & 1u) want |= static_cast<std::uint8_t>(1u << (r % 8));
  }
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != std::byte(want)) {
      std::ostringstream os;
      os << "rank " << rank << ": byte " << i << " is 0x" << std::hex
         << static_cast<int>(buf[i]) << ", want fold 0x"
         << static_cast<int>(want);
      return os.str();
    }
  }
  return {};
}

std::string check_bcast_bytes(const std::vector<std::byte>& buf,
                              std::uint64_t data_seed, Rank pattern_rank,
                              Rank rank) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    const std::byte want =
        bcast_byte(data_seed, pattern_rank, static_cast<Bytes>(i));
    if (buf[i] != want) {
      std::ostringstream os;
      os << "rank " << rank << ": byte " << i << " is 0x" << std::hex
         << static_cast<int>(buf[i]) << ", want 0x" << static_cast<int>(want)
         << " (rank " << std::dec << pattern_rank << "'s payload)";
      return os.str();
    }
  }
  return {};
}

std::string classify(const RecoveryCase& rc, const net::FaultPlan& plan,
                     const Outcome& out) {
  std::uint64_t dead_mask = 0;
  for (const auto& d : plan.deaths) dead_mask |= 1ull << d.rank;
  const std::uint64_t world_mask =
      rc.world == 64 ? ~0ull : (1ull << rc.world) - 1;
  const std::uint64_t live_mask = world_mask & ~dead_mask;
  const bool root_dead = (dead_mask >> 0) & 1u;

  const auto live = [&](Rank g) { return (live_mask >> g) & 1u; };
  const RankOut* first = nullptr;
  for (Rank g = 0; g < rc.world; ++g) {
    if (!live(g)) continue;
    const RankOut& r = out.ranks[static_cast<std::size_t>(g)];
    if (!r.finished) return "live rank never finished";
    if (r.bombed) {
      return "watchdog bomb fired on live rank " + std::to_string(g) +
             " — recovery never completed";
    }
    if (!first) first = &r;
  }
  ADAPT_CHECK(first != nullptr) << "recovery case with no live ranks";

  if (resilient(rc.op)) {
    for (Rank g = 0; g < rc.world; ++g) {
      if (!live(g)) continue;
      const RankOut& r = out.ranks[static_cast<std::size_t>(g)];
      if (r.code != first->code || r.mask != first->mask ||
          r.attempts != first->attempts) {
        std::ostringstream os;
        os << "live ranks disagree: rank " << g << " code="
           << mpi::err_name(r.code) << " comm=0x" << std::hex << r.mask
           << std::dec << " attempts=" << r.attempts << " vs code="
           << mpi::err_name(first->code) << " comm=0x" << std::hex
           << first->mask << std::dec << " attempts=" << first->attempts;
        return os.str();
      }
      if ((r.failed & ~dead_mask) != 0) {
        std::ostringstream os;
        os << "rank " << g << "'s agreed failure set 0x" << std::hex
           << r.failed << " names a live rank";
        return os.str();
      }
      if ((r.mask & live_mask) != live_mask) {
        std::ostringstream os;
        os << "survivor communicator 0x" << std::hex << r.mask
           << " excludes a live rank";
        return os.str();
      }
    }
    if (first->code == mpi::ErrCode::kOk) {
      for (Rank g = 0; g < rc.world; ++g) {
        if (!live(g)) continue;
        const RankOut& r = out.ranks[static_cast<std::size_t>(g)];
        const std::string diff =
            rc.op == RecoveryOp::kBcast
                ? check_bcast_bytes(r.buf, rc.data_seed, 0, g)
                : check_fold(r.buf, r.mask, g);
        if (!diff.empty()) return "survivor result wrong: " + diff;
      }
      if (rc.op == RecoveryOp::kBcast && !((first->mask >> 0) & 1u)) {
        return "bcast reported success on a communicator without the root";
      }
      if (!rc.kill && first->attempts != 1) {
        return "soft faults alone cost " + std::to_string(first->attempts) +
               " attempts — the reliability layer should have healed them";
      }
    } else {
      if (first->code != mpi::ErrCode::kErrProcFailed) {
        return std::string("unexpected uniform error ") +
               mpi::err_name(first->code);
      }
      if (!rc.kill) return "resilient op failed with no death injected";
      if (rc.op == RecoveryOp::kAllreduce) {
        return "resilient_allreduce failed to complete on the survivors";
      }
      if (!root_dead) {
        return "resilient_bcast failed although the root survived";
      }
      // Dead bcast root, uniformly reported: the accepted unrecoverable case.
    }
    return {};
  }

  // EC rows: bounded staleness + exact fold over the reported contributors.
  const TimeNs slack = milliseconds(2);
  for (Rank g = 0; g < rc.world; ++g) {
    if (!live(g)) continue;
    const RankOut& r = out.ranks[static_cast<std::size_t>(g)];
    if (r.code != mpi::ErrCode::kOk) {
      return std::string("EC op on rank ") + std::to_string(g) +
             " surfaced " + mpi::err_name(r.code);
    }
    if (r.finish - r.start > rc.staleness + slack) {
      std::ostringstream os;
      os << "rank " << g << " took " << (r.finish - r.start)
         << " ns, staleness bound is " << rc.staleness << " (+" << slack
         << " slack)";
      return os.str();
    }
    if (!((r.mask >> g) & 1u)) {
      return "rank " + std::to_string(g) + " not in its own contributor set";
    }
    if ((r.mask & ~world_mask) != 0) {
      return "rank " + std::to_string(g) + " reports a contributor outside "
             "the communicator";
    }
    if (rc.op == RecoveryOp::kEcAllreduce) {
      if ((r.mask & live_mask) != live_mask) {
        std::ostringstream os;
        os << "rank " << g << " reached only contributors 0x" << std::hex
           << r.mask << " within the bound; live peers should all heal "
           << "within the staleness window";
        return os.str();
      }
      const std::string diff = check_fold(r.buf, r.mask, g);
      if (!diff.empty()) {
        return "EC result is not the fold over its contributors: " + diff;
      }
      if (!rc.kill && !r.complete) {
        return "no-death EC allreduce did not complete on rank " +
               std::to_string(g);
      }
    } else {  // kEcBcast
      if (g == 0) continue;  // the root trivially holds its own payload
      if (r.complete) {
        if (!((r.mask >> 0) & 1u)) {
          return "complete ec_bcast without the root in the contributors";
        }
        const std::string diff = check_bcast_bytes(r.buf, rc.data_seed, 0, g);
        if (!diff.empty()) return "ec_bcast delivered wrong bytes: " + diff;
      } else {
        if (!rc.kill || !root_dead) {
          return "ec_bcast timed out on rank " + std::to_string(g) +
                 " although the root survived";
        }
        const std::string diff = check_bcast_bytes(r.buf, rc.data_seed, g, g);
        if (!diff.empty()) {
          return "incomplete ec_bcast touched the buffer: " + diff;
        }
      }
    }
  }
  return {};
}

}  // namespace

std::optional<std::string> run_recovery_case(const RecoveryCase& rc,
                                             std::string* failing_trace) {
  ADAPT_CHECK(rc.world >= 2 && rc.world <= 64);
  const net::FaultPlan plan =
      make_recovery_plan(rc.chaos_seed, rc.kill, rc.world);
  const Outcome first = run_once(rc, plan);
  const std::string verdict = classify(rc, plan, first);
  if (!verdict.empty()) {
    if (failing_trace) *failing_trace = first.trace_json;
    return verdict;
  }
  // Determinism pin: an identical rerun must produce identical outcomes and
  // an identical trace — recovery decisions (membership, attempts, timing)
  // are a pure function of the seeds.
  const Outcome second = run_once(rc, plan);
  if (second.trace_hash != first.trace_hash) {
    if (failing_trace) *failing_trace = second.trace_json;
    std::ostringstream os;
    os << "nondeterministic recovery: trace hash 0x" << std::hex
       << first.trace_hash << " vs 0x" << second.trace_hash
       << " on an identical rerun";
    return os.str();
  }
  for (Rank g = 0; g < rc.world; ++g) {
    if (!(second.ranks[static_cast<std::size_t>(g)] ==
          first.ranks[static_cast<std::size_t>(g)])) {
      if (failing_trace) *failing_trace = second.trace_json;
      return "nondeterministic recovery: rank " + std::to_string(g) +
             "'s outcome changed on an identical rerun";
    }
  }
  return std::nullopt;
}

std::vector<RecoveryCase> recovery_matrix(int seeds) {
  std::vector<RecoveryCase> cases;
  std::uint64_t data_seed = 2000;  // disjoint from the other matrices
  const RecoveryOp ops[] = {RecoveryOp::kBcast, RecoveryOp::kAllreduce,
                            RecoveryOp::kEcBcast, RecoveryOp::kEcAllreduce};
  for (const RecoveryOp op : ops) {
    for (const bool kill : {false, true}) {
      for (int s = 1; s <= seeds; ++s) {
        RecoveryCase c;
        c.op = op;
        c.kill = kill;
        c.chaos_seed = static_cast<std::uint64_t>(s);
        c.data_seed = data_seed++;
        cases.push_back(c);
      }
      RecoveryCase big;  // rendezvous-sized: deaths land mid-bulk-transfer
      big.op = op;
      big.kill = kill;
      big.bytes = kib(96);
      big.segment = kib(32);
      big.chaos_seed = 1;
      big.data_seed = data_seed++;
      cases.push_back(big);
    }
  }
  return cases;
}

RecoveryReport run_recovery_matrix(const RecoveryMatrixOptions& options) {
  RecoveryReport report;
  const std::vector<RecoveryCase> cases = recovery_matrix(options.seeds);
  report.cases = static_cast<int>(cases.size());
  int done = 0;
  for (const RecoveryCase& c : cases) {
    if (options.on_case) options.on_case(recovery_repro(c));
    std::string failing_trace;
    const auto verdict = run_recovery_case(
        c, options.trace_dir.empty() ? nullptr : &failing_trace);
    ++done;
    if (verdict) {
      const std::string line = recovery_repro(c) + " -- " + *verdict;
      report.failures.push_back(line);
      if (options.log) options.log("FAIL " + line);
      if (!options.trace_dir.empty() && !failing_trace.empty()) {
        const std::string path =
            options.trace_dir + "/recovery-failure-" +
            std::to_string(report.failures.size() - 1) + ".trace.json";
        std::ofstream out(path);
        out << failing_trace;
        if (options.log) {
          options.log(out ? "  trace: " + path
                          : "  trace: FAILED to write " + path);
        }
      }
    }
    if (options.log && done % 8 == 0) {
      options.log("recovery: " + std::to_string(done) + "/" +
                  std::to_string(report.cases) + " cases, " +
                  std::to_string(report.failures.size()) + " failures");
    }
  }
  return report;
}

std::string RecoveryReport::summary() const {
  std::ostringstream out;
  out << cases << " cases, " << failures.size() << " failures";
  for (const std::string& f : failures) out << "\n  " << f;
  return out.str();
}

}  // namespace adapt::verify
