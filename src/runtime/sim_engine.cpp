#include "src/runtime/sim_engine.hpp"

#include <algorithm>
#include <utility>

#include "src/gpu/device.hpp"
#include "src/support/error.hpp"

namespace adapt::runtime {

// ------------------------------------------------------- SimRankExecutor ---

class SimEngine::SimRankExecutor final : public mpi::RankExecutor {
 public:
  SimRankExecutor(SimEngine& engine, Rank rank)
      : engine_(engine), rank_(rank) {}

  TimeNs now() const override { return engine_.sim_.now(); }
  void post(std::function<void()> fn, TimeNs cpu_cost) override {
    engine_.run_on(rank_, std::move(fn), cpu_cost);
  }
  void post_progress(std::function<void()> fn, TimeNs cpu_cost) override {
    engine_.run_progress(rank_, std::move(fn), cpu_cost);
  }
  void charge(TimeNs cpu_cost) override { engine_.charge(rank_, cpu_cost); }

 private:
  SimEngine& engine_;
  Rank rank_;
};

// ---------------------------------------------------------- SimTransport ---

class SimEngine::SimTransport final : public mpi::Transport {
 public:
  explicit SimTransport(SimEngine& engine) : engine_(engine) {}

  void submit(mpi::Envelope env, MemSpace src_space, MemSpace dst_space,
              std::function<void()> on_sent) override {
    net::Route route =
        engine_.net_.route_mem(env.src, src_space, env.dst, dst_space);
    // FIFO per (src, dst, lane-direction): segments between one pair leave
    // back to back (NIC transmit queue), not fair-shared against each other.
    route.serial_key =
        static_cast<std::int64_t>(env.src) * engine_.machine_.nranks() +
        env.dst;
    if (env.size <= engine_.machine_.spec().eager_threshold) {
      submit_eager(route, std::move(env), std::move(on_sent));
    } else {
      submit_rendezvous(route, std::move(env), std::move(on_sent));
    }
  }

 private:
  mpi::Endpoint& endpoint(Rank r) {
    return *engine_.endpoints_[static_cast<std::size_t>(r)];
  }

  /// Eager: the data travels immediately and is buffered at the receiver if
  /// nothing matches; the sender never waits on the receiver's CPU.
  void submit_eager(const net::Route& route, mpi::Envelope env,
                    std::function<void()> on_sent) {
    const Rank src = env.src;
    const Rank dst = env.dst;
    engine_.net_.transfer(
        route, env.size,
        [this, src, dst, env = std::move(env),
         on_sent = std::move(on_sent)]() mutable {
          engine_.run_progress(src, std::move(on_sent), 0);
          // NIC-side matching: no receiver-CPU gate here (deliver defers any
          // CPU-bound follow-up itself).
          endpoint(dst).deliver(std::move(env));
        });
  }

  /// Rendezvous: an RTS races ahead; the bulk data moves only once a receive
  /// matched (instantly when pre-posted — hardware matching — or whenever
  /// the receiver gets around to posting one). This is the coupling that
  /// lets a noisy receiver stall its parent in blocking/Waitall designs.
  void submit_rendezvous(const net::Route& route, mpi::Envelope env,
                         std::function<void()> on_sent) {
    const Rank dst = env.dst;
    const TimeNs rts_latency = route.alpha;
    mpi::Envelope rts = env;  // shares the payload pointer
    rts.grant = [this, route, env = std::move(env),
                 on_sent = std::move(on_sent)](mpi::PostedRecv recv) {
      // CTS back to the sender, then the bulk transfer.
      engine_.sim_.after(route.alpha, [this, route, env, on_sent, recv] {
        const Rank src = env.src;
        const Rank rdst = env.dst;
        engine_.net_.transfer(route, env.size, [this, src, rdst, env, on_sent,
                                                recv] {
          engine_.run_progress(src, on_sent, 0);
          engine_.run_progress(
              rdst,
              [this, rdst, recv, env] { endpoint(rdst).finalize_recv(recv, env); },
              engine_.machine_.spec().cpu_overhead);
        });
      });
    };
    engine_.sim_.after(rts_latency, [this, dst, rts = std::move(rts)]() mutable {
      endpoint(dst).deliver(std::move(rts));
    });
  }

  SimEngine& engine_;
};

// ------------------------------------------------------------- SimContext ---

class SimEngine::SimContext final : public Context {
 public:
  SimContext(SimEngine& engine, Rank rank) : engine_(engine), rank_(rank) {}

  Rank rank() const override { return rank_; }
  int nranks() const override { return engine_.machine_.nranks(); }
  TimeNs now() const override { return engine_.sim_.now(); }
  mpi::Endpoint& endpoint() override {
    return *engine_.endpoints_[static_cast<std::size_t>(rank_)];
  }
  const topo::Machine& machine() const override { return engine_.machine_; }

  sim::Task<> compute(TimeNs cost) override {
    ADAPT_CHECK(cost >= 0);
    co_await sim::Suspend([this, cost](std::coroutine_handle<> h) {
      engine_.run_on(rank_, [h] { h.resume(); }, cost);
    });
  }

  void defer(TimeNs cpu_cost, std::function<void()> fn) override {
    engine_.run_on(rank_, std::move(fn), cpu_cost);
  }

  void defer_progress(TimeNs cpu_cost, std::function<void()> fn) override {
    engine_.run_progress(rank_, std::move(fn), cpu_cost);
  }

  sim::Task<> sleep_for(TimeNs duration) override {
    ADAPT_CHECK(duration >= 0);
    co_await sim::Suspend([this, duration](std::coroutine_handle<> h) {
      engine_.sim_.after(duration, [h] { h.resume(); });
    });
  }

  gpu::Device* gpu() override {
    return engine_.gpu_ ? engine_.gpu_->device_for(rank_) : nullptr;
  }

 private:
  SimEngine& engine_;
  Rank rank_;
};

// -------------------------------------------------------------- SimEngine ---

SimEngine::SimEngine(const topo::Machine& machine, SimEngineOptions options)
    : machine_(machine),
      options_(options),
      net_(sim_, machine, options.sharing, options.gpu),
      noise_(options.noise ? options.noise
                           : std::make_shared<noise::NoNoise>()) {
  if (options_.perturb) sim_.set_perturbation(options_.perturb);
  const int n = machine_.nranks();
  transport_ = std::make_unique<SimTransport>(*this);
  busy_until_.assign(static_cast<std::size_t>(n), 0);
  progress_busy_until_.assign(static_cast<std::size_t>(n), 0);

  const mpi::EndpointCosts costs{machine_.spec().cpu_overhead,
                                 machine_.spec().unexpected_overhead,
                                 machine_.spec().memcpy_beta};
  executors_.reserve(static_cast<std::size_t>(n));
  endpoints_.reserve(static_cast<std::size_t>(n));
  contexts_.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    executors_.push_back(std::make_unique<SimRankExecutor>(*this, r));
    endpoints_.push_back(std::make_unique<mpi::Endpoint>(
        r, *executors_.back(), *transport_, costs));
    contexts_.push_back(std::make_unique<SimContext>(*this, r));
  }
  if (machine_.spec().gpus_per_socket > 0) {
    gpu_ = std::make_unique<gpu::GpuRuntime>(sim_, net_, machine_);
  }
}

SimEngine::~SimEngine() = default;

Context& SimEngine::context(Rank r) {
  ADAPT_CHECK(r >= 0 && r < machine_.nranks());
  return *contexts_[static_cast<std::size_t>(r)];
}

void SimEngine::run_on(Rank r, std::function<void()> fn, TimeNs cpu_cost) {
  ADAPT_CHECK(cpu_cost >= 0);
  auto& busy = busy_until_[static_cast<std::size_t>(r)];
  TimeNs start = std::max(sim_.now(), busy);
  start = noise_->next_free(r, start);
  busy = start + cpu_cost;
  sim_.at(busy, std::move(fn));
}

void SimEngine::run_progress(Rank r, std::function<void()> fn,
                             TimeNs cpu_cost) {
  ADAPT_CHECK(cpu_cost >= 0);
  auto& busy = progress_busy_until_[static_cast<std::size_t>(r)];
  busy = std::max(sim_.now(), busy) + cpu_cost;
  sim_.at(busy, std::move(fn));
}

void SimEngine::charge(Rank r, TimeNs cpu_cost) {
  ADAPT_CHECK(cpu_cost >= 0);
  auto& busy = busy_until_[static_cast<std::size_t>(r)];
  busy = std::max(sim_.now(), busy) + cpu_cost;
}

RunResult SimEngine::run(const RankProgram& program) {
  const int n = machine_.nranks();
  RunResult result;
  result.rank_finish.assign(static_cast<std::size_t>(n), -1);
  int remaining = n;
  std::exception_ptr failure;

  for (Rank r = 0; r < n; ++r) {
    run_on(
        r,
        [this, r, &program, &result, &remaining, &failure] {
          sim::run_detached(
              program(*contexts_[static_cast<std::size_t>(r)]),
              [this, r, &result, &remaining, &failure](std::exception_ptr ep) {
                result.rank_finish[static_cast<std::size_t>(r)] = sim_.now();
                --remaining;
                if (ep && !failure) failure = ep;
              });
        },
        0);
  }

  sim_.run();
  if (failure) std::rethrow_exception(failure);
  ADAPT_CHECK(remaining == 0)
      << remaining << " of " << n
      << " ranks never finished: deadlock (blocked on a message that is "
         "never sent)";
  result.total_time =
      *std::max_element(result.rank_finish.begin(), result.rank_finish.end());
  return result;
}

}  // namespace adapt::runtime
